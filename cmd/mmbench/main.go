// Command mmbench runs the engine benchmark suite and writes the results
// as machine-readable JSON (BENCH_engines.json), so the performance
// trajectory is tracked commit over commit instead of living in scrollback.
//
// Two kinds of rows:
//
//   - testing.Benchmark rows (relay round-throughput on each engine — the
//     step engine natively at several worker counts) with ns/op and
//     allocs/op;
//   - scale rows (the E11 configurations: native MST merge, BFS forest +
//     coloring, census — each on a big ring) timed as single runs, with
//     nodes/sec derived from the wall clock.
//
// The -compare flag turns mmbench into a regression gate: current results
// are diffed row by row against a committed report and any >25% nodes/sec
// regression fails the run (`make bench-check`, CI's perf-smoke job).
//
// Usage:
//
//	mmbench                        # moderate sizes (~10⁵), seconds
//	mmbench -full                  # 10⁶-node scale rows (minutes)
//	mmbench -out BENCH_engines.json
//	mmbench -compare BENCH_engines.json -out /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/size"
)

// Row is one benchmark result in BENCH_engines.json.
type Row struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Workers     int     `json:"workers,omitempty"` // step-engine worker count (0: engine default)
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	Rounds      int     `json:"rounds,omitempty"`
	Messages    int64   `json:"messages,omitempty"`
	// Memory rows (nodes_per_sec 0, so the -compare wall-clock gate skips
	// them): the heap cost of holding the topology itself.
	Bytes        uint64  `json:"bytes,omitempty"`
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`
	Note         string  `json:"note,omitempty"`
}

// Report is the whole file.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Full       bool   `json:"full"`
	Rows       []Row  `json:"rows"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmbench:", err)
		os.Exit(1)
	}
}

const relayRounds = 20

func relayProgram(ctx *sim.Ctx) error {
	for r := 0; r < relayRounds; r++ {
		ctx.Send(0, r)
		ctx.Tick()
	}
	return nil
}

type relayMachine struct{ c *sim.StepCtx }

func (m relayMachine) Step(in sim.Input) bool {
	if in.Round == relayRounds {
		return true
	}
	m.c.Send(0, in.Round)
	return false
}

func (m relayMachine) Result() any { return nil }

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mmbench", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		out     = fs.String("out", "BENCH_engines.json", "output file ('-' for stdout)")
		full    = fs.Bool("full", false, "run the 10⁶-node scale rows (minutes)")
		nodes   = fs.Int("n", 100_000, "node count for the relay/census benchmark rows")
		compare = fs.String("compare", "", "baseline report to diff against; >25% nodes/sec regression fails")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics and pprof /debug/pprof on this address while the suite runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep := &Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Full: *full}

	// With -metrics-addr the whole suite is observed: an Obs becomes the
	// process-default recorder (every benchmarked run feeds the registry)
	// and the registry is served for scraping while rows run. Off by
	// default so the timed rows stay observation-free.
	if *metricsAddr != "" {
		o := obs.New(obs.Options{PprofLabels: true})
		prev := sim.DefaultRecorder
		sim.DefaultRecorder = o
		defer func() { sim.DefaultRecorder = prev }()
		srv, err := obs.Serve(*metricsAddr, o.Registry())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mmbench: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
	}

	ring, err := graph.Ring(*nodes, 1)
	if err != nil {
		return err
	}

	// Round-throughput rows: the same fixed-round relay protocol on the
	// goroutine engine, the step engine through the adapter, and natively
	// at several worker counts (the sense-reversing barrier is what makes
	// workers >1 worthwhile; on a single-core host the extra rows measure
	// its oversubscription overhead instead).
	relay := func(name string, workers int, run func() (*sim.Result, error)) error {
		var rounds int
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := run()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Metrics.Rounds
			}
		})
		rep.Rows = append(rep.Rows, Row{
			Name: name, Nodes: *nodes, Workers: workers,
			NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(),
			NodesPerSec: float64(*nodes) * float64(rounds) / (float64(r.NsPerOp()) / 1e9),
			Rounds:      rounds,
			Note:        "node-rounds/sec over a 20-round all-nodes relay",
		})
		fmt.Fprintf(w, "%-32s %12d ns/op %10d allocs/op\n", name, r.NsPerOp(), r.AllocsPerOp())
		return nil
	}
	if err := relay("relay/goroutine", 0, func() (*sim.Result, error) {
		return sim.Run(ring, relayProgram, sim.WithEngine(sim.EngineGoroutine))
	}); err != nil {
		return err
	}
	if err := relay("relay/step-adapter", 1, func() (*sim.Result, error) {
		return sim.Run(ring, relayProgram, sim.WithEngine(sim.EngineStep), sim.WithWorkers(1))
	}); err != nil {
		return err
	}
	if err := relay("relay/step-adapter-w4", 4, func() (*sim.Result, error) {
		return sim.Run(ring, relayProgram, sim.WithEngine(sim.EngineStep), sim.WithWorkers(4))
	}); err != nil {
		return err
	}
	for _, workers := range []int{1, 4, 8} {
		name := "relay/step-native"
		if workers > 1 {
			name = fmt.Sprintf("relay/step-native-w%d", workers)
		}
		if err := relay(name, workers, func() (*sim.Result, error) {
			return sim.RunStep(ring, func(c *sim.StepCtx) sim.Machine { return relayMachine{c: c} },
				sim.WithWorkers(workers))
		}); err != nil {
			return err
		}
	}

	// Phase-breakdown rows: where a relay round's time goes — step compute
	// vs delivery vs barrier wait — per worker count. This is the
	// measurement the ROADMAP's multicore campaign reads.
	if err := phaseRows(w, rep, ring, *nodes); err != nil {
		return err
	}

	// Scale rows: the E11 configurations, one timed run each on the step
	// engine.
	scaleN := *nodes
	if *full {
		scaleN = 1_000_000
	}
	if err := scaleRows(w, rep, scaleN); err != nil {
		return err
	}

	// Memory rows: bytes/node of holding each topology form of the same
	// ring spec — the axis the implicit forms exist for.
	if err := memRows(w, rep, scaleN); err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := w.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d rows)\n", *out, len(rep.Rows))
	}

	if *compare != "" {
		return compareReports(w, rep, *compare)
	}
	return nil
}

// regressionTolerance: a row fails the -compare gate when its nodes/sec
// drops below this fraction of the baseline's, or its allocs/op grow
// beyond 1/fraction of the baseline's.
const regressionTolerance = 0.75

// allocsSlack is the absolute allocs/op growth always tolerated, so the
// proportional gate stays meaningful against a zero-alloc baseline (where
// any ratio is infinite) and doesn't trip on one-allocation jitter atop
// tiny baselines.
const allocsSlack = 16

// bytesPerNodeSlack is the absolute bytes/node growth always tolerated by
// the memory gate: the O(1)-topology rows sit at micro-bytes/node, where
// any proportional bound is noise.
const bytesPerNodeSlack = 16.0

// compareReports diffs the fresh report against a committed baseline. Rows
// are matched by name; rows whose node counts differ (e.g. quick-mode scale
// rows against a -full baseline) are skipped, new rows pass by default, and
// any matched row slower than regressionTolerance × baseline fails. The
// allocs/op check is the machine-independent half of the gate: wall-clock
// rows wobble with the runner's hardware and load, but a steady-state
// allocation regression reproduces exactly everywhere. When the baseline
// was recorded at a different GOMAXPROCS the machines aren't comparable —
// a 1-core container baseline vs a multi-core CI runner would fail (or
// absolve) wall-clock rows on hardware shape alone — so nodes/sec is
// skipped and only the allocs/op half and row presence gate.
func compareReports(w io.Writer, cur *Report, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", baselinePath, err)
	}
	baseRows := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Name] = r
	}
	sameShape := cur.GOMAXPROCS == base.GOMAXPROCS
	if !sameShape {
		fmt.Fprintf(w, "compare: gomaxprocs %d vs baseline %d: wall-clock rows not comparable, gating allocs/op and row presence only\n",
			cur.GOMAXPROCS, base.GOMAXPROCS)
	}
	var regressions []string
	matched := make(map[string]bool, len(cur.Rows))
	for _, r := range cur.Rows {
		matched[r.Name] = true
		b, ok := baseRows[r.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "compare: %-32s NEW (no baseline row)\n", r.Name)
		case b.Nodes != r.Nodes:
			fmt.Fprintf(w, "compare: %-32s skipped (n=%d vs baseline n=%d)\n", r.Name, r.Nodes, b.Nodes)
		case b.BytesPerNode > 0 && r.BytesPerNode > 0:
			// Memory rows: bytes/node gates exactly like nodes/sec — growth
			// past 1/tolerance × baseline fails. Live-heap measurements are
			// machine-shape independent, so this half always gates.
			ratio := r.BytesPerNode / b.BytesPerNode
			verdict := "ok"
			if ratio > 1/regressionTolerance && r.BytesPerNode > b.BytesPerNode+bytesPerNodeSlack {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f -> %.2f bytes/node (%.2fx)", r.Name, b.BytesPerNode, r.BytesPerNode, ratio))
			}
			fmt.Fprintf(w, "compare: %-32s %.2fx baseline bytes/node  %s\n", r.Name, ratio, verdict)
		case b.NodesPerSec <= 0:
			fmt.Fprintf(w, "compare: %-32s skipped (degenerate baseline)\n", r.Name)
		default:
			ratio := r.NodesPerSec / b.NodesPerSec
			verdict := "ok"
			if sameShape && ratio < regressionTolerance {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f -> %.0f nodes/sec (%.2fx)", r.Name, b.NodesPerSec, r.NodesPerSec, ratio))
			}
			if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)/regressionTolerance &&
				r.AllocsPerOp > b.AllocsPerOp+allocsSlack {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %d -> %d allocs/op", r.Name, b.AllocsPerOp, r.AllocsPerOp))
			}
			fmt.Fprintf(w, "compare: %-32s %.2fx baseline  %s\n", r.Name, ratio, verdict)
		}
	}
	// A baseline row the fresh report no longer produces is lost coverage,
	// not a pass: fail loudly instead of letting a renamed or deleted
	// benchmark silently drop out of the gate.
	for _, b := range base.Rows {
		if !matched[b.Name] {
			fmt.Fprintf(w, "compare: %-32s MISSING (baseline row not in current report)\n", b.Name)
			regressions = append(regressions, fmt.Sprintf("%s: baseline row missing from current report", b.Name))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d row(s) failed the gate vs %s: %v", len(regressions), baselinePath, regressions)
	}
	fmt.Fprintf(w, "compare: no row regressed >%.0f%% vs %s\n", (1-regressionTolerance)*100, baselinePath)
	return nil
}

// phaseRows runs the native relay once per worker count with an obs
// recorder attached and emits one row per engine phase: ns_per_op is the
// phase's total nanoseconds across the run, and the note carries the
// per-span p50/p95/max from the duration histogram. nodes_per_sec is 0 so
// the -compare wall-clock gate skips these rows (phase splits shift with
// hardware shape; the trajectory is informational). The observed run is
// separate from the relay benchmark rows above, whose timings stay
// recorder-free.
func phaseRows(w io.Writer, rep *Report, g *graph.Graph, n int) error {
	for _, workers := range []int{1, 4} {
		o := obs.New(obs.Options{})
		if _, err := sim.RunStep(g, func(c *sim.StepCtx) sim.Machine { return relayMachine{c: c} },
			sim.WithWorkers(workers), sim.WithRecorder(o)); err != nil {
			return err
		}
		for p := sim.Phase(0); p < sim.NumPhases; p++ {
			s := o.PhaseSummary(p)
			if s.Count == 0 {
				// The inline (workers=1) path has no barrier phase.
				continue
			}
			name := fmt.Sprintf("phase/relay-native-w%d/%s", workers, p)
			rep.Rows = append(rep.Rows, Row{
				Name: name, Nodes: n, Workers: workers,
				NsPerOp: s.Sum, Rounds: relayRounds,
				Note: fmt.Sprintf("total %s ns over one observed relay run; per span p50=%d p95=%d max=%d ns (%d spans)",
					p, s.P50, s.P95, s.Max, s.Count),
			})
			fmt.Fprintf(w, "%-32s %12d ns total  (p50=%d p95=%d max=%d ns/span, %d spans)\n",
				name, s.Sum, s.P50, s.P95, s.Max, s.Count)
		}
	}
	return nil
}

// memRows records the heap footprint of the two topology forms of one
// ring spec. The implicit form's bytes are O(1) (the row shows ~0
// bytes/node at any scale); the materialized form pays for the edge list
// plus two weight-sorted adjacency halves per edge.
func memRows(w io.Writer, rep *Report, n int) error {
	for _, form := range []struct{ name, spec string }{
		{"mem/ring-implicit", fmt.Sprintf("ring:%d", n)},
		{"mem/ring-materialized", fmt.Sprintf("mat:ring:%d", n)},
	} {
		spec := form.spec
		_, bytes, err := graph.TopoHeapCost(func() (graph.Topology, error) {
			return graph.ParseSpec(spec, 1)
		})
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, Row{
			Name: form.name, Nodes: n, Bytes: bytes,
			BytesPerNode: float64(bytes) / float64(n),
			Note:         "heap cost of holding the topology (" + form.spec + ")",
		})
		fmt.Fprintf(w, "%-32s %12d bytes  (%.2f bytes/node)\n", form.name, bytes, float64(bytes)/float64(n))
	}
	// Engine-footprint rows: the live heap a running census actually holds —
	// topology plus the step engine's node arrays, machine slab, and shard
	// arenas. This is the number that decides how many nodes fit in a box,
	// and the axis the SoA compaction moved; the -compare gate holds it.
	for _, form := range []struct{ name, spec string }{
		{"mem/census-ring-implicit", fmt.Sprintf("ring:%d", n)},
		{"mem/census-ring-materialized", fmt.Sprintf("mat:ring:%d", n)},
	} {
		bytes, err := censusFootprint(form.spec, n)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, Row{
			Name: form.name, Nodes: n, Bytes: bytes,
			BytesPerNode: float64(bytes) / float64(n),
			Note:         "max live heap (post-GC) while a census of " + form.spec + " runs",
		})
		fmt.Fprintf(w, "%-32s %12d bytes  (%.2f bytes/node)\n", form.name, bytes, float64(bytes)/float64(n))
	}
	return nil
}

// censusFootprint runs one census over spec and returns the peak live heap
// the run held. A sampler goroutine forces a collection every interval and
// reads HeapAlloc right after, so each sample sees only reachable bytes —
// the engine's steady state allocates nothing, which makes the post-GC
// samples flat and reproducible. The forced collections slow this run down;
// the timed rows are measured separately.
func censusFootprint(spec string, n int) (uint64, error) {
	g, err := graph.ParseSpec(spec, 1)
	if err != nil {
		return 0, err
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	stop := make(chan struct{})
	sampled := make(chan uint64, 1)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				sampled <- peak
				return
			case <-tick.C:
				runtime.GC()
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	res, err := size.Census(g, 1)
	close(stop)
	peak := <-sampled
	if err != nil {
		return 0, err
	}
	if res.N != n {
		return 0, fmt.Errorf("census footprint: n = %d, want %d", res.N, n)
	}
	if peak <= before.HeapAlloc {
		// The run finished before the first sample (tiny n): fall back to
		// total allocation over the run, an upper bound on its live peak.
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc, nil
	}
	return peak - before.HeapAlloc, nil
}

// scaleRows times the ported protocol suite on one big ring.
func scaleRows(w io.Writer, rep *Report, n int) error {
	prev := sim.DefaultEngine
	sim.DefaultEngine = sim.EngineStep
	defer func() { sim.DefaultEngine = prev }()

	g, err := graph.Ring(n, 1)
	if err != nil {
		return err
	}
	add := func(name string, d time.Duration, rounds int, msgs int64, note string) {
		rep.Rows = append(rep.Rows, Row{
			Name: name, Nodes: n, NsPerOp: d.Nanoseconds(),
			NodesPerSec: float64(n) / d.Seconds(), Rounds: rounds, Messages: msgs, Note: note,
		})
		fmt.Fprintf(w, "%-32s %12d ns/op  (%d nodes, %.2fs wall)\n", name, d.Nanoseconds(), n, d.Seconds())
		// Isolate the rows: one row's garbage must not tax the next's clock.
		runtime.GC()
	}
	runtime.GC()

	t0 := time.Now()
	census, err := size.Census(g, 1)
	if err != nil {
		return err
	}
	if census.N != n {
		return fmt.Errorf("census = %d, want %d", census.N, n)
	}
	add("scale/census-step", time.Since(t0), census.Metrics.Rounds, census.Metrics.Messages,
		"native BFS census, sleep/wake wavefront")

	t0 = time.Now()
	f, total, bmet, err := forest.BFS(g, 1)
	if err != nil {
		return err
	}
	if total != n {
		return fmt.Errorf("bfs total = %d, want %d", total, n)
	}
	colors, cmet, err := coloring.Distributed(f, 1)
	if err != nil {
		return err
	}
	parent := coloring.ParentInts(f)
	if !coloring.IsLegalColoring(parent, colors) || !coloring.IsRootedMIS(parent, colors) {
		return fmt.Errorf("coloring at n=%d violates the spec", n)
	}
	add("scale/forest+coloring-step", time.Since(t0), bmet.Rounds+cmet.Rounds,
		bmet.Messages+cmet.Messages, "distributed BFS forest, then 3-coloring + rooted MIS")

	sf, err := mst.RingSegmentForest(g, 16)
	if err != nil {
		return err
	}
	t0 = time.Now()
	res, err := mst.MultimediaFromForest(g, 1, sf, &sim.Metrics{})
	if err != nil {
		return err
	}
	d := time.Since(t0)
	want, err := graph.Kruskal(g)
	if err != nil {
		return err
	}
	if !res.MST.Equal(want) {
		return fmt.Errorf("mst at n=%d does not match kruskal", n)
	}
	add("scale/mst-merge-step", d, res.Total.Rounds, res.Total.Messages,
		"native §6 merge over a 16-segment ring partition, verified vs Kruskal")
	return nil
}
