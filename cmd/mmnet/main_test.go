package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunAlgos smoke-tests every -algo on a tiny graph through the full
// command wiring (flag parsing, graph construction, defaults, printing).
func TestRunAlgos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the human output must contain
	}{
		{"partition-det", []string{"-graph", "ring", "-n", "12", "-algo", "partition-det"}, "deterministic partition"},
		{"partition-rand", []string{"-graph", "ring", "-n", "12", "-algo", "partition-rand"}, "randomized partition"},
		{"partition-lv", []string{"-graph", "ring", "-n", "12", "-algo", "partition-lv"}, "las vegas partition"},
		{"mst", []string{"-graph", "random", "-n", "12", "-extra", "8", "-algo", "mst"}, "kruskal-match=true"},
		{"mst-boruvka", []string{"-graph", "random", "-n", "12", "-extra", "8", "-algo", "mst-boruvka"}, "boruvka baseline"},
		{"sum", []string{"-graph", "ring", "-n", "12", "-algo", "sum"}, "multimedia sum"},
		{"min", []string{"-graph", "ring", "-n", "12", "-algo", "min", "-variant", "rand", "-stage", "mb"}, "multimedia min"},
		{"p2p-sum", []string{"-graph", "ring", "-n", "12", "-algo", "p2p-sum"}, "point-to-point sum"},
		{"bcast-sum", []string{"-graph", "ring", "-n", "12", "-algo", "bcast-sum"}, "broadcast-only sum"},
		{"count", []string{"-graph", "ring", "-n", "12", "-algo", "count"}, "n=12"},
		{"census", []string{"-graph", "ring", "-n", "12", "-algo", "census"}, "native step census: n=12"},
		{"estimate", []string{"-graph", "ring", "-n", "12", "-algo", "estimate"}, "randomized size estimate"},
		{"estimate-step", []string{"-graph", "ring", "-n", "12", "-algo", "estimate-step"}, "native step size estimate"},
		{"elect", []string{"-graph", "ring", "-n", "12", "-algo", "elect"}, "leader=11"},
		{"snapshot", []string{"-graph", "ring", "-n", "12", "-algo", "snapshot"}, "snapshot cut"},
		{"forest", []string{"-graph", "ring", "-n", "12", "-algo", "forest"}, "counted n=12"},
		{"coloring", []string{"-graph", "ring", "-n", "12", "-algo", "coloring"}, "MIS verified"},
		{"sync-sum", []string{"-graph", "ring", "-n", "12", "-algo", "sync-sum"}, "synchronizer-driven sum = 78"},
		{"step-engine", []string{"-graph", "ring", "-n", "12", "-algo", "mst", "-engine", "step"}, "engine=step"},
		{"step-coloring", []string{"-graph", "ring", "-n", "12", "-algo", "coloring", "-engine", "step"}, "MIS verified"},
		{"other-graphs", []string{"-graph", "ray", "-rays", "3", "-raylen", "3", "-algo", "count"}, "n=10"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			out := buf.String()
			if !strings.Contains(out, tc.want) {
				t.Errorf("output lacks %q:\n%s", tc.want, out)
			}
			if !strings.Contains(out, "rounds") {
				t.Errorf("output lacks metrics line:\n%s", out)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-algo", "nope"},
		{"-graph", "nope"},
		{"-engine", "nope"},
		{"-faults", "nope:1@2"},
		{"-graph", "ring", "-n", "12", "-faults", "crash:99@1"}, // node outside graph
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunJSON checks the -json output is one well-formed object carrying
// the result and the full metrics encoding.
func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "ring", "-n", "12", "-algo", "census", "-jam", "1", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var obj struct {
		Graph   string         `json:"graph"`
		N       int            `json:"n"`
		Algo    string         `json:"algo"`
		Faults  string         `json:"faults"`
		Result  map[string]any `json:"result"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if obj.Graph != "ring" || obj.N != 12 || obj.Algo != "census" {
		t.Errorf("header fields wrong: %+v", obj)
	}
	if obj.Result["n"] != float64(12) {
		t.Errorf("result.n = %v, want 12", obj.Result["n"])
	}
	if obj.Faults != "jam:1-/p1" && !strings.Contains(obj.Faults, "jam:1-") {
		t.Errorf("faults = %q, want a jam rule", obj.Faults)
	}
	// The census never writes the channel, so every slot of the jammed run
	// is a jammed one and the writer-slot counters stay zero.
	if obj.Metrics["slots_jammed"] == float64(0) || obj.Metrics["slots"] != float64(0) {
		t.Errorf("metrics = %v, want slots_jammed > 0 and slots = 0", obj.Metrics)
	}
	for _, key := range []string{"rounds", "messages", "communication", "crashed", "dropped_fault"} {
		if _, ok := obj.Metrics[key]; !ok {
			t.Errorf("metrics lack %q: %v", key, obj.Metrics)
		}
	}
}

// TestRunFaulted checks a faulted run end to end: a jammed census still
// counts exactly, and the fault line appears in the human output.
func TestRunFaulted(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "ring", "-n", "32", "-algo", "census",
		"-faults", "jam:1-/p0.5;delay:0@1-/d2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"native step census: n=32", "faults=", "jammed-slots="} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestRunCheckpointResume drives the -transcript/-checkpoint/-resume flags
// end to end: the resumed run must report the same answer, and capturing
// checkpoints must not change the transcript.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.mmtr")
	ck := filepath.Join(dir, "ck.mmtr")
	cp := filepath.Join(dir, "cp-%d.mmcp")
	base := []string{"-graph", "ring", "-n", "48", "-algo", "census", "-seed", "9"}

	var buf bytes.Buffer
	if err := run(append(base, "-transcript", ref), &buf); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-transcript", ck, "-checkpoint", cp, "-checkpoint-at", "4,7"), &buf); err != nil {
		t.Fatal(err)
	}
	refB, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	ckB, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refB, ckB) {
		t.Fatal("checkpoint capture changed the transcript")
	}

	buf.Reset()
	if err := run(append(base, "-resume", filepath.Join(dir, "cp-7.mmcp")), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resumed from round 7): n=48") {
		t.Errorf("resume output: %q", buf.String())
	}

	// Gzip transcripts announce themselves in the suffix.
	gz := filepath.Join(dir, "ref.mmtr.gz")
	if err := run(append(base, "-transcript", gz), &buf); err != nil {
		t.Fatal(err)
	}
	gzB, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(gzB, refB) || len(gzB) == 0 {
		t.Error("gzip transcript not compressed")
	}
}

// TestRunCheckpointFlagValidation pins the flag-combination errors.
func TestRunCheckpointFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-graph", "ring", "-n", "16", "-algo", "count", "-transcript", "x.mmtr"},
		{"-graph", "ring", "-n", "16", "-algo", "census", "-checkpoint-every", "5"},
		{"-graph", "ring", "-n", "16", "-algo", "census", "-checkpoint", "x.mmcp"},
		{"-graph", "ring", "-n", "16", "-algo", "census", "-checkpoint", "x.mmcp", "-checkpoint-at", "zero"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
