package main

// prerefactor_test.go pins checkpoint layout portability across engine
// rewrites: the committed MMCP fixtures under testdata/prerefactor were
// captured by the engine as it was before the struct-of-arrays node-state
// compaction, and every later engine must resume them into a run whose
// stitched transcript is byte-identical to the committed reference. The
// two captures cover both restore surfaces: round 200 carries undelivered
// inbox messages (the census wavefront), round 300 carries in-flight
// delayed messages in the pending buffer.
//
// The fixtures were generated with
//
//	mmnet -graph ring:512 -algo census -seed 9 \
//	    -faults 'delay:*@295-305/d10;dup:*@298-308' \
//	    -transcript ring512.ref.mmtr \
//	    -checkpoint ring512-cp%d.mmcp -checkpoint-at 200,300
//
// and must never be regenerated: their value is exactly that they encode
// the OLD layout. (The census protocol draws no per-node randomness, so
// the fixtures are insensitive to RNG-stream changes; fault coins come
// from the plan seed, which the checkpoint carries.)

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestPrerefactorCheckpointResume(t *testing.T) {
	ref, err := os.ReadFile(filepath.Join("testdata", "prerefactor", "ring512.ref.mmtr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{200, 300} {
		t.Run(fmt.Sprintf("cp%d", cut), func(t *testing.T) {
			resumed := filepath.Join(t.TempDir(), "resumed.mmtr")
			var buf bytes.Buffer
			err := run([]string{"-graph", "ring:512", "-algo", "census", "-seed", "9",
				"-resume", filepath.Join("testdata", "prerefactor", fmt.Sprintf("ring512-cp%d.mmcp", cut)),
				"-transcript", resumed}, &buf)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			res, err := os.ReadFile(resumed)
			if err != nil {
				t.Fatal(err)
			}
			got := stitchRaw(t, ref, res, cut)
			if !bytes.Equal(got, ref) {
				t.Errorf("stitched transcript differs from pre-refactor reference (%d vs %d bytes)", len(got), len(ref))
			}
		})
	}
}

// stitchRaw byte-stitches ref's frames through round cut with the resumed
// transcript's post-header frames — the file-format-level reimplementation
// the sim package's checkpoint tests use, kept independent of the reader so
// a framing bug cannot hide itself.
func stitchRaw(t *testing.T, ref, resumed []byte, cut int) []byte {
	t.Helper()
	offs, rounds := rawFrames(t, ref)
	cutOff := len(ref)
	for i, r := range rounds {
		if (r == -1 && i > 0) || r > cut {
			cutOff = offs[i]
			break
		}
	}
	roffs, _ := rawFrames(t, resumed)
	if len(roffs) < 2 {
		t.Fatalf("resumed transcript has only %d frames", len(roffs))
	}
	out := append([]byte{}, ref[:cutOff]...)
	return append(out, resumed[roffs[1]:]...)
}

// rawFrames scans an uncompressed MMTR stream: 6-byte prelude, then frames
// of kind byte | uvarint len | body | 4-byte crc. Round frames (kind 2)
// open with the round uvarint; other kinds report round -1.
func rawFrames(t *testing.T, raw []byte) (offsets, roundsOf []int) {
	t.Helper()
	if len(raw) < 6 || string(raw[:4]) != "MMTR" || raw[5]&1 != 0 {
		t.Fatal("not a plain MMTR transcript")
	}
	off := 6
	for off < len(raw) {
		offsets = append(offsets, off)
		kind := raw[off]
		size, n := binary.Uvarint(raw[off+1:])
		if n <= 0 {
			t.Fatalf("bad frame length at offset %d", off)
		}
		body := raw[off+1+n : off+1+n+int(size)]
		if kind == 2 {
			r, _ := binary.Uvarint(body)
			roundsOf = append(roundsOf, int(r))
		} else {
			roundsOf = append(roundsOf, -1)
		}
		off += 1 + n + int(size) + 4
	}
	if off != len(raw) {
		t.Fatalf("trailing garbage: %d bytes", len(raw)-off)
	}
	return offsets, roundsOf
}
