package main

// golden_test.go locks the determinism contract against committed bytes:
// every config below runs through the full command (flags → graph →
// algorithm → -json encoding) and must reproduce its fixture under
// testdata/golden exactly. Engine-vs-engine equivalence is the differential
// suite's job; the golden files catch regressions both engines share — a
// changed RNG derivation, a reordered delivery, a metrics accounting slip.
//
// Regenerate intentionally with:
//
//	go test ./cmd/mmnet -run TestGoldenTranscripts -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcript fixtures")

// goldenConfigs pin one representative run per protocol family, most on the
// step engine (the engine being locked down), one on the goroutine oracle.
var goldenConfigs = []struct {
	name string
	args []string
}{
	{"census-ring64-step", []string{"-graph", "ring", "-n", "64", "-algo", "census"}},
	{"count-ring16-step", []string{"-graph", "ring", "-n", "16", "-algo", "count", "-engine", "step"}},
	{"sum-ring20-step", []string{"-graph", "ring", "-n", "20", "-algo", "sum", "-engine", "step"}},
	{"min-rand-mb-random18-step", []string{"-graph", "random", "-n", "18", "-extra", "12", "-algo", "min", "-variant", "rand", "-stage", "mb", "-engine", "step"}},
	{"mst-random24-step", []string{"-graph", "random", "-n", "24", "-extra", "20", "-algo", "mst", "-engine", "step"}},
	{"mst-random24-goroutine", []string{"-graph", "random", "-n", "24", "-extra", "20", "-algo", "mst", "-engine", "goroutine"}},
	{"partition-det-ring32-step", []string{"-graph", "ring", "-n", "32", "-algo", "partition-det", "-engine", "step"}},
	{"estimate-ring16-step", []string{"-graph", "ring", "-n", "16", "-algo", "estimate", "-engine", "step"}},
	{"elect-ring24-step", []string{"-graph", "ring", "-n", "24", "-algo", "elect", "-engine", "step"}},
	{"snapshot-random20-step", []string{"-graph", "random", "-n", "20", "-extra", "14", "-algo", "snapshot", "-engine", "step"}},
	{"forest-star24-step", []string{"-graph", "star", "-n", "24", "-algo", "forest", "-engine", "step"}},
	{"coloring-random26-step", []string{"-graph", "random", "-n", "26", "-extra", "18", "-algo", "coloring", "-engine", "step"}},
	{"sync-sum-ring12-step", []string{"-graph", "ring", "-n", "12", "-algo", "sync-sum", "-engine", "step"}},
	{"census-jammed-ring48-step", []string{"-graph", "ring", "-n", "48", "-algo", "census", "-faults", "seed:5;jam:1-20/p0.5"}},
	// Implicit-topology runs: the O(1)-memory forms with hash-derived
	// weights must stay transcript-stable too, and "mat:" must match them
	// byte for byte apart from the spec echoed in the graph field.
	{"census-ring64-implicit", []string{"-graph", "ring:64", "-algo", "census"}},
	{"mst-hypercube4-implicit-step", []string{"-graph", "hypercube:4", "-algo", "mst", "-engine", "step"}},
	{"sum-ws-small-world-step", []string{"-graph", "ws:24,4,0.2", "-algo", "sum", "-engine", "step"}},
	{"forest-ba-scale-free-step", []string{"-graph", "ba:26,2", "-algo", "forest", "-engine", "step"}},
	{"count-faulted-ring24-step", []string{"-graph", "ring", "-n", "24", "-algo", "count", "-engine", "step", "-faults", "seed:5;dup:*@2-20/p0.2/d2", "-max-rounds", "4000"}},
	// Chaos v2 rules: a partition window the randomized sum survives with
	// legible drift, and a crash-restart the coloring pipeline completes
	// through (the restarted node revives inside one of its internal runs).
	{"sum-rand-mb-partitioned-random18-step", []string{"-graph", "random", "-n", "18", "-extra", "12", "-algo", "sum", "-variant", "rand", "-stage", "mb", "-engine", "step", "-faults", "partition:2@3-6", "-max-rounds", "4000"}},
	{"coloring-restart-star24-step", []string{"-graph", "star", "-n", "24", "-algo", "coloring", "-engine", "step", "-faults", "crash:7@3;restart:7@8", "-max-rounds", "4000"}},
}

func TestGoldenTranscripts(t *testing.T) {
	for _, tc := range goldenConfigs {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			args := append(append([]string{}, tc.args...), "-json")
			if err := run(args, &buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("transcript deviates from committed fixture %s:\n got:  %s\n want: %s",
					path, buf.Bytes(), want)
			}
		})
	}
}
