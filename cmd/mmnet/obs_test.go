package main

// obs_test.go is the command-level smoke for the observability flags — the
// same checks CI's obs-smoke job runs: a census on a 10⁴ ring with -trace
// and -series produces a parseable Chrome trace and exactly one series row
// per round, and the series header line matches its golden fixture
// (regenerate with -update, like the transcript goldens).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	seriesPath := filepath.Join(dir, "series.ndjson")

	var out bytes.Buffer
	args := []string{
		"-graph", "ring:10000", "-algo", "census", "-workers", "1",
		"-trace", tracePath, "-series", seriesPath, "-json",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}

	// The -json object carries the run configuration the trace and series
	// join against.
	var obj struct {
		Engine  string `json:"engine"`
		Workers int    `json:"workers"`
		Metrics struct {
			Rounds int `json:"rounds"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(out.Bytes(), &obj); err != nil {
		t.Fatalf("-json output: %v", err)
	}
	if obj.Engine == "" {
		t.Error("-json output missing engine")
	}
	if obj.Workers != 1 {
		t.Errorf("-json workers = %d, want 1", obj.Workers)
	}
	if obj.Metrics.Rounds == 0 {
		t.Fatal("-json output reports zero rounds")
	}

	// The trace parses as trace_event JSON with phase spans.
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	spans := 0
	for _, ev := range tr.TraceEvents {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("trace has no duration spans")
	}

	// The series has a header plus exactly one row per round at -series-every 1.
	sf, err := os.Open(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	sc := bufio.NewScanner(sf)
	var header string
	rows := 0
	for sc.Scan() {
		if header == "" {
			header = sc.Text()
			if !strings.Contains(header, `"series":"mm-series"`) {
				t.Fatalf("first series line is not the header: %s", header)
			}
			continue
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != obj.Metrics.Rounds {
		t.Errorf("series rows = %d, want rounds = %d", rows, obj.Metrics.Rounds)
	}

	// The header line is format-stable: golden-pinned like the transcripts.
	goldenPath := filepath.Join("testdata", "golden", "series-header.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(header+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	if string(want) != header+"\n" {
		t.Errorf("series header deviates from %s:\n got:  %s\n want: %s", goldenPath, header, want)
	}
}
