package main

import (
	"testing"

	"repro/internal/difftest"
	"repro/internal/graph"
)

// TestEveryAlgoHasEquivalenceCoverage is the CI gate of the differential
// harness: every -algo value this command accepts must be claimed by a
// runner in internal/difftest, whose outcomes the engines-equivalence suite
// compares bit for bit across engines, worker counts, and fault plans. An
// algorithm cannot be added to the CLI without a step-engine equivalence
// test.
func TestEveryAlgoHasEquivalenceCoverage(t *testing.T) {
	for _, algo := range algoNames {
		if !difftest.Covers(algo) {
			t.Errorf("-algo %s has no differential-test runner in internal/difftest", algo)
		}
	}
	// And the registry must not claim algos the CLI no longer offers.
	known := make(map[string]bool, len(algoNames))
	for _, a := range algoNames {
		known[a] = true
	}
	for _, p := range difftest.Protocols() {
		for _, a := range p.Algos {
			if !known[a] {
				t.Errorf("difftest runner %s claims unknown -algo %s", p.Name, a)
			}
		}
	}
}

// TestAlgoNamesMatchSwitch: every registered name must actually run (tiny
// graph), so algoNames cannot drift from runAlgo's switch.
func TestAlgoNamesMatchSwitch(t *testing.T) {
	for _, algo := range algoNames {
		args := []string{"-graph", "random", "-n", "14", "-extra", "10", "-algo", algo}
		var buf discard
		if err := run(args, &buf); err != nil {
			t.Errorf("-algo %s: %v", algo, err)
		}
	}
}

// TestEveryGraphNameRuns is the -graph coverage gate: every topology family
// graph.SpecNames advertises must be reachable through the flag, both as a
// bare name sized by -n (n=16 is a power of two, so even hypercube
// resolves) and in at least one spec spelling. A generator that exists in
// internal/graph but cannot be reached from the CLI fails here.
func TestEveryGraphNameRuns(t *testing.T) {
	for _, name := range graph.SpecNames() {
		args := []string{"-graph", name, "-n", "16", "-algo", "census"}
		var buf discard
		if err := run(args, &buf); err != nil {
			t.Errorf("-graph %s: %v", name, err)
		}
	}
	for _, spec := range []string{
		"ring:16", "path:16", "grid:4x4", "torus:4x4", "hypercube:4",
		"star:16", "btree:16", "complete:8", "random:16,8", "ray:3,5",
		"ba:16,2", "ws:16,4,0.1", "mat:ring:16",
	} {
		var buf discard
		if err := run([]string{"-graph", spec, "-algo", "census"}, &buf); err != nil {
			t.Errorf("-graph %s: %v", spec, err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
