// Command mmnet runs one multimedia-network algorithm on one generated
// topology and prints the paper's complexity measures.
//
// Usage examples:
//
//	mmnet -graph ring -n 256 -algo partition-det
//	mmnet -graph random -n 512 -extra 1024 -algo mst
//	mmnet -graph grid -n 400 -algo sum -variant rand -stage mb
//	mmnet -graph ray -rays 16 -raylen 16 -algo p2p-sum
//	mmnet -graph ring -n 100 -algo count
//	mmnet -graph ring -n 256 -algo mst -engine step
//	mmnet -graph ring -n 1000000 -algo census
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/sim"
	"repro/internal/size"
	"repro/internal/snapshot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmnet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gname   = flag.String("graph", "random", "topology: ring|path|grid|torus|random|complete|star|btree|ray")
		n       = flag.Int("n", 256, "number of nodes (ring/path/random/complete/star/btree)")
		extra   = flag.Int("extra", 256, "extra edges beyond the spanning tree (random)")
		rays    = flag.Int("rays", 8, "rays (ray graph)")
		rayLen  = flag.Int("raylen", 8, "ray length (ray graph)")
		seed    = flag.Int64("seed", 1, "master seed")
		algo    = flag.String("algo", "partition-det", "partition-det|partition-rand|partition-lv|mst|mst-boruvka|sum|min|p2p-sum|bcast-sum|count|census|estimate|estimate-step|elect|snapshot")
		variant = flag.String("variant", "det", "multimedia function variant: det|balanced|rand")
		stage   = flag.String("stage", "cap", "global stage: cap|mb")
		engine  = flag.String("engine", "goroutine", "execution engine: goroutine|step (census and estimate-step are native step-engine protocols and always run on step)")
		workers = flag.Int("workers", 0, "step-engine worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	sim.DefaultEngine = eng
	sim.DefaultWorkers = *workers

	g, err := makeGraph(*gname, *n, *extra, *rays, *rayLen, *seed)
	if err != nil {
		return err
	}
	engineLabel := eng.String()
	if *algo == "census" || *algo == "estimate-step" {
		engineLabel = "step (native protocol)"
	}
	fmt.Printf("graph=%s n=%d m=%d diameter>=%d sqrt(n)=%d engine=%s\n",
		*gname, g.N(), g.M(), graph.DiameterLowerBound(g), partition.SqrtN(g.N()), engineLabel)

	switch *algo {
	case "partition-det":
		f, met, info, err := partition.Deterministic(g, *seed)
		if err != nil {
			return err
		}
		st := f.Stats()
		fmt.Printf("deterministic partition: trees=%d minSize=%d maxRadius=%d phases=%d\n",
			st.Trees, st.MinSize, st.MaxRadius, info.Phases)
		printMetrics(met)
	case "partition-rand":
		f, met, info, err := partition.Randomized(g, *seed)
		if err != nil {
			return err
		}
		st := f.Stats()
		fmt.Printf("randomized partition: trees=%d maxRadius=%d (bound %d) iterations=%d\n",
			st.Trees, st.MaxRadius, 4*partition.SqrtN(g.N()), info.Iterations)
		printMetrics(met)
	case "partition-lv":
		f, met, info, err := partition.RandomizedLasVegas(g, *seed)
		if err != nil {
			return err
		}
		st := f.Stats()
		fmt.Printf("las vegas partition: trees=%d (bound %d) restarts=%d\n",
			st.Trees, 2*partition.SqrtN(g.N()), info.Restarts)
		printMetrics(met)
	case "mst":
		res, err := mst.Multimedia(g, *seed)
		if err != nil {
			return err
		}
		want, err := graph.Kruskal(g)
		if err != nil {
			return err
		}
		fmt.Printf("multimedia MST: weight=%d edges=%d fragments=%d phases=%d kruskal-match=%v\n",
			res.MST.Total, len(res.MST.EdgeIDs), res.InitialFragments, res.Phases, res.MST.Equal(want))
		printMetrics(&res.Total)
	case "mst-boruvka":
		res, err := mst.Boruvka(g, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("boruvka baseline MST: weight=%d phases=%d\n", res.MST.Total, res.Phases)
		printMetrics(&res.Total)
	case "sum", "min":
		op := globalfunc.Sum
		if *algo == "min" {
			op = globalfunc.Min
		}
		v := map[string]globalfunc.Variant{
			"det": globalfunc.VariantDeterministic, "balanced": globalfunc.VariantBalanced,
			"rand": globalfunc.VariantRandomized,
		}[*variant]
		s := map[string]globalfunc.Stage{
			"cap": globalfunc.StageCapetanakis, "mb": globalfunc.StageMetcalfeBoggs,
		}[*stage]
		if v == 0 || s == 0 {
			return fmt.Errorf("unknown variant %q or stage %q", *variant, *stage)
		}
		res, err := globalfunc.Multimedia(g, *seed, op, inputs, v, s)
		if err != nil {
			return err
		}
		fmt.Printf("multimedia %s = %d (reference %d), trees=%d\n",
			op.Name, res.Value, globalfunc.Reference(g, op, inputs), res.Trees)
		printMetrics(&res.Total)
	case "p2p-sum":
		res, err := globalfunc.PointToPoint(g, *seed, globalfunc.Sum, inputs)
		if err != nil {
			return err
		}
		fmt.Printf("point-to-point sum = %d\n", res.Value)
		printMetrics(&res.Total)
	case "bcast-sum":
		res, err := globalfunc.BroadcastOnly(g, *seed, globalfunc.Sum, inputs, globalfunc.StageCapetanakis)
		if err != nil {
			return err
		}
		fmt.Printf("broadcast-only sum = %d\n", res.Value)
		printMetrics(&res.Total)
	case "count":
		res, err := size.Exact(g, *seed, 0)
		if err != nil {
			return err
		}
		fmt.Printf("deterministic size computation: n=%d phases=%d\n", res.N, res.Phases)
		printMetrics(&res.Metrics)
	case "census":
		// Native step-machine census: exact n on the point-to-point network,
		// built for million-node graphs (always runs on the step engine).
		res, err := size.Census(g, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("native step census: n=%d\n", res.N)
		printMetrics(&res.Metrics)
	case "estimate":
		res, err := size.Estimate(g, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("randomized size estimate: 2^k=%d (true n=%d, ratio %.2f)\n",
			res.Estimate, g.N(), float64(res.Estimate)/float64(g.N()))
		printMetrics(&res.Metrics)
	case "estimate-step":
		res, err := size.EstimateStep(g, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("native step size estimate: 2^k=%d (true n=%d, ratio %.2f)\n",
			res.Estimate, g.N(), float64(res.Estimate)/float64(g.N()))
		printMetrics(&res.Metrics)
	case "elect":
		res, err := sim.Run(g, func(c *sim.Ctx) error {
			leader, ok, _ := resolve.Election(c, sim.Input{}, c.N(), true, int(c.ID()))
			if !ok {
				return fmt.Errorf("no contenders")
			}
			c.SetResult(leader)
			return nil
		}, sim.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("deterministic election: leader=%v (max id)\n", res.Results[0])
		printMetrics(&res.Metrics)
	case "snapshot":
		res, err := sim.Run(g, func(c *sim.Ctx) error {
			cut, ok, _ := snapshot.Take(c, sim.Input{}, c.ID() == 0, func(int) {})
			if !ok {
				return fmt.Errorf("snapshot not taken")
			}
			c.SetResult(cut)
			return nil
		}, sim.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("snapshot cut: %+v at every node\n", res.Results[0])
		printMetrics(&res.Metrics)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

func inputs(v graph.NodeID) int64 { return (int64(v)*2654435761 + 17) % 10_000 }

func makeGraph(name string, n, extra, rays, rayLen int, seed int64) (*graph.Graph, error) {
	switch name {
	case "ring":
		return graph.Ring(n, seed)
	case "path":
		return graph.Path(n, seed)
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return graph.Grid(side, (n+side-1)/side, seed)
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return graph.Torus(side, side, seed)
	case "random":
		return graph.RandomConnected(n, extra, seed)
	case "complete":
		return graph.Complete(n, seed)
	case "star":
		return graph.Star(n, seed)
	case "btree":
		return graph.BinaryTree(n, seed)
	case "ray":
		return graph.Ray(rays, rayLen, seed)
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func printMetrics(m *sim.Metrics) {
	fmt.Printf("time=%d rounds, messages=%d, slots: idle=%d success=%d collision=%d, communication=%d\n",
		m.Rounds, m.Messages, m.SlotsIdle, m.SlotsSuccess, m.SlotsCollision, m.Communication())
}
