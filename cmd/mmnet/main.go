// Command mmnet runs one multimedia-network algorithm on one generated
// topology and prints the paper's complexity measures.
//
// Usage examples:
//
//	mmnet -graph ring -n 256 -algo partition-det
//	mmnet -graph random -n 512 -extra 1024 -algo mst
//	mmnet -graph grid -n 400 -algo sum -variant rand -stage mb
//	mmnet -graph ray -rays 16 -raylen 16 -algo p2p-sum
//	mmnet -graph ring -n 100 -algo count
//	mmnet -graph ring -n 256 -algo mst -engine step
//	mmnet -graph ring -n 1000000 -algo census
//	mmnet -graph ring -n 100000 -algo census -jam 1
//	mmnet -graph random -n 256 -algo sum -faults 'jam:1-40/p0.5;drop:3@2-'
//	mmnet -graph ring -n 64 -algo count -json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/async"
	"repro/internal/coloring"
	"repro/internal/fault"
	"repro/internal/forest"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/sim"
	"repro/internal/size"
	"repro/internal/snapshot"
)

// algoNames is the canonical -algo registry. Every entry must run on both
// engines and be claimed by a differential-test runner in
// internal/difftest (enforced by TestEveryAlgoHasEquivalenceCoverage).
var algoNames = []string{
	"partition-det", "partition-rand", "partition-lv",
	"mst", "mst-boruvka",
	"sum", "min", "p2p-sum", "bcast-sum",
	"count", "census", "estimate", "estimate-step",
	"elect", "snapshot", "coloring", "forest", "sync-sum",
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmnet:", err)
		os.Exit(1)
	}
}

// report is one algorithm run's outcome in both human and machine form.
type report struct {
	lines   []string       // human-readable lines, printed before the metrics
	result  map[string]any // machine-readable fields for -json
	metrics *sim.Metrics
}

func (r *report) addf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

func (r *report) set(key string, v any) {
	if r.result == nil {
		r.result = make(map[string]any)
	}
	r.result[key] = v
}

// setSimDefaults installs the process-wide simulator defaults the flags
// describe and returns a restore function (keeps tests hermetic). The
// recorder rides along so every inner run of a multi-stage algorithm is
// observed, not just the outermost one.
func setSimDefaults(eng sim.Engine, workers int, plan *fault.Plan, maxRounds int, rec sim.Recorder) func() {
	oldE, oldW, oldF, oldM, oldR := sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultRecorder
	sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultRecorder = eng, workers, plan, maxRounds, rec
	return func() {
		sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultRecorder = oldE, oldW, oldF, oldM, oldR
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mmnet", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		gname     = fs.String("graph", "random", graph.SpecHelp())
		n         = fs.Int("n", 256, "number of nodes (bare -graph names; hypercube wants a power of two)")
		extra     = fs.Int("extra", 256, "extra edges beyond the spanning tree (random)")
		rays      = fs.Int("rays", 8, "rays (ray graph)")
		rayLen    = fs.Int("raylen", 8, "ray length (ray graph)")
		seed      = fs.Int64("seed", 1, "master seed")
		algo      = fs.String("algo", "partition-det", strings.Join(algoNames, "|"))
		variant   = fs.String("variant", "det", "multimedia function variant: det|balanced|rand")
		stage     = fs.String("stage", "cap", "global stage: cap|mb")
		engine    = fs.String("engine", "goroutine", "execution engine: goroutine|step (census and estimate-step are native step-engine protocols and always run on step)")
		workers   = fs.Int("workers", 0, "step-engine worker count (0 = GOMAXPROCS)")
		jsonOut   = fs.Bool("json", false, "emit the run as one machine-readable JSON object on stdout")
		faults    = fs.String("faults", "", "fault plan DSL, e.g. 'crash:7@10;jam:4-12/p0.5;drop:3@5-' (see README, Fault model)")
		crashFrac = fs.Float64("crash", 0, "crash-stop this fraction of nodes at round 1 (seeded-random victims)")
		jamRate   = fs.Float64("jam", 0, "jam every channel slot with this probability")
		faultSeed = fs.Int64("fault-seed", 1, "seed for the fault plan's probabilistic rules (unless the DSL pins seed:N)")
		maxRounds = fs.Int("max-rounds", 0, "round budget per run (0 = graph-derived default); bound wedged faulted runs")

		transcriptPath = fs.String("transcript", "", "stream the run's binary transcript to this file (.gz suffix = gzip); native step protocols (census|estimate-step) only")
		ckptPath       = fs.String("checkpoint", "", "checkpoint sink file; a %d in the name is replaced by the capture round, otherwise the latest capture wins (census|estimate-step)")
		ckptEvery      = fs.Int("checkpoint-every", 0, "capture a checkpoint every N rounds (requires -checkpoint)")
		ckptAt         = fs.String("checkpoint-at", "", "comma-separated rounds to checkpoint at (requires -checkpoint)")
		resumePath     = fs.String("resume", "", "resume from this checkpoint instead of round 0 (census|estimate-step; seed, faults, and round budget come from the checkpoint)")

		tracePath   = fs.String("trace", "", "write engine phase spans as Chrome trace_event JSON to this file (load in Perfetto or about:tracing)")
		seriesPath  = fs.String("series", "", "stream per-round NDJSON time series to this file ('-' = stdout)")
		seriesEvery = fs.Int("series-every", 1, "aggregate this many rounds per series row (column sums stay exact at any factor)")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics and pprof /debug/pprof on this address for the run's duration (e.g. localhost:9100)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	plan, err := fault.FromFlags(*faults, *crashFrac, *jamRate, *faultSeed)
	if err != nil {
		return err
	}

	g, err := graph.ParseSpecWith(*gname, *seed, graph.SpecDefaults{
		N: *n, Extra: *extra, Rays: *rays, RayLen: *rayLen,
	})
	if err != nil {
		return err
	}
	engineLabel := eng.String()
	if *algo == "census" || *algo == "estimate-step" {
		engineLabel = "step (native protocol)"
	}

	simOpts, closeTranscript, err := ckptTranscriptOpts(*algo, *transcriptPath, *ckptPath, *ckptEvery, *ckptAt, *resumePath)
	if err != nil {
		return err
	}

	// Observability: any of -trace/-series/-metrics-addr builds an Obs and
	// installs it as the run's default recorder, so every sim run the
	// algorithm performs — including inner runs of multi-stage protocols —
	// lands in the same trace, series, and registry. By the recorder
	// contract none of this changes the transcript.
	var o *obs.Obs
	var seriesFile *os.File
	if *tracePath != "" || *seriesPath != "" || *metricsAddr != "" {
		opts := obs.Options{
			Trace:       *tracePath != "",
			PprofLabels: *tracePath != "" || *metricsAddr != "",
			SeriesEvery: *seriesEvery,
		}
		if *seriesPath != "" {
			var sw io.Writer = w
			if *seriesPath != "-" {
				if seriesFile, err = os.Create(*seriesPath); err != nil {
					return err
				}
				sw = seriesFile
			}
			opts.Series = sw
			opts.Header = obs.SeriesHeader{
				Algo: *algo, Graph: *gname, N: g.N(), Seed: *seed,
				Engine: engineLabel, Workers: *workers,
			}
			if plan != nil {
				opts.Header.Faults = plan.String()
			}
		}
		o = obs.New(opts)
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, o.Registry())
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "mmnet: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
		}
	}
	var rec sim.Recorder
	if o != nil {
		rec = o
	}
	defer setSimDefaults(eng, *workers, plan, *maxRounds, rec)()

	var rep *report
	if *resumePath != "" {
		rep, err = runResume(*algo, g, *resumePath, simOpts)
	} else {
		rep, err = runAlgo(*algo, g, *seed, *variant, *stage, simOpts...)
	}
	if cerr := closeTranscript(); cerr != nil && err == nil {
		err = fmt.Errorf("transcript: %w", cerr)
	}
	if err != nil {
		return err
	}

	if o != nil {
		if err := o.Close(); err != nil {
			return fmt.Errorf("series: %w", err)
		}
		if seriesFile != nil {
			if err := seriesFile.Close(); err != nil {
				return err
			}
		}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			if err := o.WriteTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if *jsonOut {
		obj := map[string]any{
			"graph":   *gname,
			"n":       g.N(),
			"m":       g.M(),
			"engine":  engineLabel,
			"workers": *workers,
			"algo":    *algo,
			"seed":    *seed,
			"result":  rep.result,
			"metrics": rep.metrics,
		}
		if plan != nil {
			obj["faults"] = plan.String()
		}
		enc := json.NewEncoder(w)
		return enc.Encode(obj)
	}

	fmt.Fprintf(w, "graph=%s n=%d m=%d diameter>=%d sqrt(n)=%d engine=%s workers=%d\n",
		*gname, g.N(), g.M(), graph.DiameterLowerBound(g), partition.SqrtN(g.N()), engineLabel, *workers)
	if plan != nil {
		fmt.Fprintf(w, "faults=%s\n", plan)
	}
	for _, line := range rep.lines {
		fmt.Fprintln(w, line)
	}
	printMetrics(w, rep.metrics)
	if o != nil {
		printPhases(w, o)
	}
	return nil
}

// printPhases appends the per-phase duration digest to the human report.
func printPhases(w io.Writer, o *obs.Obs) {
	for p := sim.Phase(0); p < sim.NumPhases; p++ {
		s := o.PhaseSummary(p)
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "phase %-7s p50=%s p95=%s max=%s total=%s (%d spans)\n",
			p.String(), ns(s.P50), ns(s.P95), ns(s.Max), ns(s.Sum), s.Count)
	}
}

// ns renders a nanosecond count with a unit suffix.
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// ckptTranscriptOpts validates and wires the -transcript/-checkpoint*/-resume
// flags into sim options. These flags talk to the engine of a single run, so
// they are limited to the native step protocols (census, estimate-step) whose
// execution is exactly one sim.RunStep.
func ckptTranscriptOpts(algo, transcriptPath, ckptPath string, every int, atList, resumePath string) (opts []sim.Option, closer func() error, err error) {
	closer = func() error { return nil }
	if transcriptPath == "" && ckptPath == "" && every == 0 && atList == "" && resumePath == "" {
		return nil, closer, nil
	}
	if algo != "census" && algo != "estimate-step" {
		return nil, nil, fmt.Errorf("-transcript/-checkpoint/-resume need a native step protocol (census|estimate-step), not %q", algo)
	}
	if (every > 0 || atList != "") && ckptPath == "" {
		return nil, nil, errors.New("-checkpoint-every/-checkpoint-at need -checkpoint FILE")
	}
	if ckptPath != "" && every == 0 && atList == "" {
		return nil, nil, errors.New("-checkpoint needs -checkpoint-every N and/or -checkpoint-at ROUNDS")
	}
	if transcriptPath != "" {
		f, err := os.Create(transcriptPath)
		if err != nil {
			return nil, nil, err
		}
		tw := sim.NewTranscriptWriter(f, strings.HasSuffix(transcriptPath, ".gz"))
		opts = append(opts, sim.WithTranscript(tw))
		closer = func() error {
			if err := tw.Close(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	if ckptPath != "" {
		spec := &sim.CheckpointSpec{Every: every, Sink: func(cp *sim.Checkpoint) error {
			return writeCheckpointFile(ckptPath, cp)
		}}
		for _, field := range strings.Split(atList, ",") {
			if field = strings.TrimSpace(field); field == "" {
				continue
			}
			r, err := strconv.Atoi(field)
			if err != nil || r < 1 {
				return nil, nil, fmt.Errorf("-checkpoint-at: bad round %q", field)
			}
			spec.At = append(spec.At, r)
		}
		opts = append(opts, sim.WithCheckpoints(spec))
	}
	return opts, closer, nil
}

// writeCheckpointFile writes one checkpoint; a %d in the path becomes the
// capture round.
func writeCheckpointFile(path string, cp *sim.Checkpoint) error {
	if strings.Contains(path, "%d") {
		path = fmt.Sprintf(path, cp.Round)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := cp.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runResume restarts a checkpointed native protocol from its capture round;
// the checkpoint dictates seed, fault plan, and round budget, so only the
// graph flags and -workers need to match the original invocation.
func runResume(algo string, g graph.Topology, path string, opts []sim.Option) (*report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cp, err := sim.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var prog sim.StepProgram
	switch algo {
	case "census":
		prog = globalfunc.P2PStepProgram(globalfunc.Sum, func(graph.NodeID) int64 { return 1 })
	case "estimate-step":
		prog = size.GLStepProgram()
	default:
		return nil, fmt.Errorf("-resume supports census|estimate-step, not %q", algo)
	}
	res, err := sim.Resume(g, prog, cp, opts...)
	if err != nil {
		return nil, err
	}
	rep := &report{}
	rep.set("resumed_from", cp.Round)
	switch algo {
	case "census":
		n := res.Results[0].(int64)
		rep.addf("native step census (resumed from round %d): n=%d", cp.Round, n)
		rep.set("n", n)
	case "estimate-step":
		est := res.Results[0].(int64)
		rep.addf("native step size estimate (resumed from round %d): 2^k=%d (true n=%d)", cp.Round, est, g.N())
		rep.set("estimate", est)
	}
	rep.metrics = &res.Metrics
	return rep, nil
}

// runAlgo executes one algorithm and reports its outcome — the testable
// core of the command. simOpts carries the transcript/checkpoint options of
// the native step protocols; every other algorithm ignores it (the flag
// layer rejects the combination before it gets here).
func runAlgo(algo string, g graph.Topology, seed int64, variant, stage string, simOpts ...sim.Option) (*report, error) {
	rep := &report{}
	switch algo {
	case "partition-det":
		f, met, info, err := partition.Deterministic(g, seed)
		if err != nil {
			return nil, err
		}
		st := f.Stats()
		rep.addf("deterministic partition: trees=%d minSize=%d maxRadius=%d phases=%d",
			st.Trees, st.MinSize, st.MaxRadius, info.Phases)
		rep.set("trees", st.Trees)
		rep.set("min_size", st.MinSize)
		rep.set("max_radius", st.MaxRadius)
		rep.set("phases", info.Phases)
		rep.metrics = met
	case "partition-rand":
		f, met, info, err := partition.Randomized(g, seed)
		if err != nil {
			return nil, err
		}
		st := f.Stats()
		rep.addf("randomized partition: trees=%d maxRadius=%d (bound %d) iterations=%d",
			st.Trees, st.MaxRadius, 4*partition.SqrtN(g.N()), info.Iterations)
		rep.set("trees", st.Trees)
		rep.set("max_radius", st.MaxRadius)
		rep.set("iterations", info.Iterations)
		rep.metrics = met
	case "partition-lv":
		f, met, info, err := partition.RandomizedLasVegas(g, seed)
		if err != nil {
			return nil, err
		}
		st := f.Stats()
		rep.addf("las vegas partition: trees=%d (bound %d) restarts=%d",
			st.Trees, 2*partition.SqrtN(g.N()), info.Restarts)
		rep.set("trees", st.Trees)
		rep.set("restarts", info.Restarts)
		rep.metrics = met
	case "mst":
		res, err := mst.Multimedia(g, seed)
		if err != nil {
			return nil, err
		}
		want, err := graph.Kruskal(g)
		if err != nil {
			return nil, err
		}
		rep.addf("multimedia MST: weight=%d edges=%d fragments=%d phases=%d kruskal-match=%v",
			res.MST.Total, len(res.MST.EdgeIDs), res.InitialFragments, res.Phases, res.MST.Equal(want))
		rep.set("weight", res.MST.Total)
		rep.set("edges", len(res.MST.EdgeIDs))
		rep.set("fragments", res.InitialFragments)
		rep.set("phases", res.Phases)
		rep.set("kruskal_match", res.MST.Equal(want))
		rep.metrics = &res.Total
	case "mst-boruvka":
		res, err := mst.Boruvka(g, seed)
		if err != nil {
			return nil, err
		}
		rep.addf("boruvka baseline MST: weight=%d phases=%d", res.MST.Total, res.Phases)
		rep.set("weight", res.MST.Total)
		rep.set("phases", res.Phases)
		rep.metrics = &res.Total
	case "sum", "min":
		op := globalfunc.Sum
		if algo == "min" {
			op = globalfunc.Min
		}
		v := map[string]globalfunc.Variant{
			"det": globalfunc.VariantDeterministic, "balanced": globalfunc.VariantBalanced,
			"rand": globalfunc.VariantRandomized,
		}[variant]
		s := map[string]globalfunc.Stage{
			"cap": globalfunc.StageCapetanakis, "mb": globalfunc.StageMetcalfeBoggs,
		}[stage]
		if v == 0 || s == 0 {
			return nil, fmt.Errorf("unknown variant %q or stage %q", variant, stage)
		}
		res, err := globalfunc.Multimedia(g, seed, op, inputs, v, s)
		if err != nil {
			return nil, err
		}
		ref := globalfunc.Reference(g, op, inputs)
		rep.addf("multimedia %s = %d (reference %d), trees=%d", op.Name, res.Value, ref, res.Trees)
		rep.set("value", res.Value)
		rep.set("reference", ref)
		rep.set("trees", res.Trees)
		rep.metrics = &res.Total
	case "p2p-sum":
		res, err := globalfunc.PointToPoint(g, seed, globalfunc.Sum, inputs)
		if err != nil {
			return nil, err
		}
		rep.addf("point-to-point sum = %d", res.Value)
		rep.set("value", res.Value)
		rep.metrics = &res.Total
	case "bcast-sum":
		res, err := globalfunc.BroadcastOnly(g, seed, globalfunc.Sum, inputs, globalfunc.StageCapetanakis)
		if err != nil {
			return nil, err
		}
		rep.addf("broadcast-only sum = %d", res.Value)
		rep.set("value", res.Value)
		rep.metrics = &res.Total
	case "count":
		res, err := size.Exact(g, seed, 0)
		if err != nil {
			return nil, err
		}
		rep.addf("deterministic size computation: n=%d phases=%d", res.N, res.Phases)
		rep.set("n", res.N)
		rep.set("phases", res.Phases)
		rep.metrics = &res.Metrics
	case "census":
		// Native step-machine census: exact n on the point-to-point network,
		// built for million-node graphs (always runs on the step engine).
		res, err := size.Census(g, seed, simOpts...)
		if err != nil {
			return nil, err
		}
		rep.addf("native step census: n=%d", res.N)
		rep.set("n", res.N)
		rep.metrics = &res.Metrics
	case "estimate":
		res, err := size.Estimate(g, seed)
		if err != nil {
			return nil, err
		}
		rep.addf("randomized size estimate: 2^k=%d (true n=%d, ratio %.2f)",
			res.Estimate, g.N(), float64(res.Estimate)/float64(g.N()))
		rep.set("estimate", res.Estimate)
		rep.set("ratio", float64(res.Estimate)/float64(g.N()))
		rep.metrics = &res.Metrics
	case "estimate-step":
		res, err := size.EstimateStep(g, seed, simOpts...)
		if err != nil {
			return nil, err
		}
		rep.addf("native step size estimate: 2^k=%d (true n=%d, ratio %.2f)",
			res.Estimate, g.N(), float64(res.Estimate)/float64(g.N()))
		rep.set("estimate", res.Estimate)
		rep.set("ratio", float64(res.Estimate)/float64(g.N()))
		rep.metrics = &res.Metrics
	case "elect":
		leader, met, err := resolve.Elect(g, seed)
		if err != nil {
			return nil, err
		}
		rep.addf("deterministic election: leader=%v (max id)", leader)
		rep.set("leader", leader)
		rep.metrics = &met
	case "snapshot":
		cut, met, err := snapshot.Run(g, seed)
		if err != nil {
			return nil, err
		}
		rep.addf("snapshot cut: %+v at every node", cut)
		rep.set("cut", fmt.Sprintf("%+v", cut))
		rep.metrics = &met
	case "forest":
		f, total, met, err := forest.BFS(g, seed)
		if err != nil {
			return nil, err
		}
		st := f.Stats()
		rep.addf("distributed BFS spanning forest: trees=%d maxRadius=%d counted n=%d", st.Trees, st.MaxRadius, total)
		rep.set("trees", st.Trees)
		rep.set("max_radius", st.MaxRadius)
		rep.set("n_counted", total)
		rep.metrics = &met
	case "coloring":
		f, _, bmet, err := forest.BFS(g, seed)
		if err != nil {
			return nil, err
		}
		colors, cmet, err := coloring.Distributed(f, seed)
		if err != nil {
			return nil, err
		}
		parent := coloring.ParentInts(f)
		if !coloring.IsLegalColoring(parent, colors) {
			return nil, fmt.Errorf("coloring: output is not a legal coloring")
		}
		if !coloring.IsRootedMIS(parent, colors) {
			return nil, fmt.Errorf("coloring: red vertices are not a rooted MIS")
		}
		var byColor [3]int
		for _, c := range colors {
			byColor[c]++
		}
		rep.addf("distributed 3-coloring + rooted MIS: red=%d green=%d blue=%d (legal, MIS verified)",
			byColor[coloring.Red], byColor[coloring.Green], byColor[coloring.Blue])
		rep.set("red", byColor[coloring.Red])
		rep.set("green", byColor[coloring.Green])
		rep.set("blue", byColor[coloring.Blue])
		total := bmet
		total.Add(&cmet)
		rep.metrics = &total
	case "sync-sum":
		results := make([]int64, g.N())
		var mu sync.Mutex
		res, err := async.Sync(g, seed, 1<<30,
			async.SumDemo(func(v graph.NodeID) int64 { return int64(v) + 1 }, results, &mu))
		if err != nil {
			return nil, err
		}
		want := int64(g.N()) * int64(g.N()+1) / 2
		rep.addf("synchronizer-driven sum = %d (reference %d): %d simulated rounds, overhead %.2fx",
			results[0], want, res.Rounds, res.Overhead())
		rep.set("sum", results[0])
		rep.set("sim_rounds", res.Rounds)
		rep.set("alg_msgs", res.AlgMsgs)
		rep.set("ack_msgs", res.AckMsgs)
		rep.metrics = &res.Metrics
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	return rep, nil
}

func inputs(v graph.NodeID) int64 { return (int64(v)*2654435761 + 17) % 10_000 }

func printMetrics(w io.Writer, m *sim.Metrics) {
	fmt.Fprintf(w, "time=%d rounds, messages=%d, slots: idle=%d success=%d collision=%d, communication=%d\n",
		m.Rounds, m.Messages, m.SlotsIdle, m.SlotsSuccess, m.SlotsCollision, m.Communication())
	if m.Crashed+m.DroppedFault+m.Delayed+m.Duplicated+m.SlotsJammed+m.PartitionedDrop+m.Restarted+m.Skewed > 0 {
		fmt.Fprintf(w, "faults: crashed=%d dropped=%d delayed=%d duplicated=%d jammed-slots=%d partitioned=%d restarted=%d skewed=%d\n",
			m.Crashed, m.DroppedFault, m.Delayed, m.Duplicated, m.SlotsJammed, m.PartitionedDrop, m.Restarted, m.Skewed)
	}
}
