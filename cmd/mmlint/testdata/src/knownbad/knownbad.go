// Package knownbad violates every mmlint contract once — the end-to-end
// fixture cmd/mmlint's tests drive the real multichecker over. It lives
// under testdata so `go build ./...` and `go vet ./...` never see it, but
// it type-checks against the real module (including repro/internal/sim) so
// the full load path is exercised.
package knownbad

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// leakedCtx trips ctxescape: a package-level context outliving its node.
var leakedCtx *sim.StepCtx

type counters struct {
	seq int64
	buf []int
}

// mapOrderBug trips maporder: iteration order leaks into the result.
func mapOrderBug(m map[int]string) string {
	out := ""
	for _, v := range m {
		out += v
	}
	return out
}

// detSourceBug trips detsource twice: wall-clock and global math/rand.
func detSourceBug() int64 {
	if rand.Float64() < 0.5 {
		return time.Now().UnixNano()
	}
	return 0
}

// noAllocBug trips noalloc: fmt and make on a declared-hot path.
//
//mmlint:noalloc
func noAllocBug(c *counters, n int) {
	fmt.Println(n)
	c.buf = make([]int, n)
}

// ctxEscapeBug trips ctxescape: the context is stored into a global.
func ctxEscapeBug(c *sim.StepCtx) {
	leakedCtx = c
}

// atomicMixBug trips atomicmix: seq is atomic here, plain in reset.
func (c *counters) atomicMixBug() int64 {
	return atomic.AddInt64(&c.seq, 1)
}

func (c *counters) reset() {
	c.seq = 0
}
