// Command mmlint runs the repo's determinism/zero-alloc analyzer suite
// (internal/analysis: maporder, detsource, noalloc, ctxescape, atomicmix)
// over Go package patterns — the build-time half of the contracts the
// difftest/golden/alloc gates assert at runtime.
//
// Standalone (the `make lint` path):
//
//	mmlint ./...             # lint the whole module, exit 1 on findings
//	mmlint -dir /repo ./...  # lint another module
//	mmlint -json ./...       # machine-readable findings
//
// As a vet tool (the unitchecker protocol):
//
//	go vet -vettool=$(which mmlint) ./...
//
// In vet mode the go command hands the tool one *.cfg JSON file per
// package, with the dependency graph already compiled to export data; the
// tool type-checks from that, runs the suite, and reports findings on
// stderr with a non-zero exit, which `go vet` relays per package.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet driver probes its tool with -V=full (version fingerprint
	// for build caching) and -flags (supported analyzer flags) before
	// handing it package configs; answer both, then detect config mode.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Fprintln(stdout, "mmlint version mmlint-1.0")
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVet(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("mmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module directory to resolve patterns in")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mmlint [-dir DIR] [-json] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.LoadPatterns(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mmlint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "mmlint: %v\n", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mmlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the slice of the unitchecker protocol's per-package config
// file mmlint needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet executes one unitchecker-protocol invocation: type-check the
// package from the export data the go command prepared, run the suite, and
// report findings like `go vet` expects (stderr + exit 2).
func runVet(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "mmlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "mmlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts output must exist even though mmlint's analyzers exchange
	// no facts — the go command caches and replays it for dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mmlint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "mmlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "mmlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: compilerImporter, Sizes: sizes}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "mmlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: sizes,
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "mmlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
