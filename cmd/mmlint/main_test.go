package main

// main_test.go drives the real multichecker — the same run() main calls —
// over the known-bad fixture package and asserts every analyzer fires with
// its expected diagnostic, plus the clean-exit and JSON paths.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const knownBad = "./cmd/mmlint/testdata/src/knownbad"

// runMain invokes the CLI entry point against the module root.
func runMain(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(append([]string{"-dir", "../.."}, args...), &out, &errb)
	return code, out.String(), errb.String()
}

func TestKnownBadFiresEveryAnalyzer(t *testing.T) {
	code, out, _ := runMain(t, knownBad)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	wants := map[string]string{
		"maporder":  "iteration over map map[int]string is unordered",
		"detsource": "global math/rand",
		"noalloc":   "fmt.Println in a //mmlint:noalloc function allocates",
		"ctxescape": "package-level leakedCtx holds a *sim context",
		"atomicmix": "plain access to field seq",
	}
	//mmlint:commutative independent per-analyzer presence checks
	for analyzer, frag := range wants {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, ": "+analyzer+": ") && strings.Contains(line, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("analyzer %s did not fire with %q\noutput:\n%s", analyzer, frag, out)
		}
	}
	// time.Now is the second detsource finding in the fixture.
	if !strings.Contains(out, "time.Now: wall-clock time") {
		t.Errorf("detsource missed the wall-clock read\noutput:\n%s", out)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, errb := runMain(t, "./internal/size")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean run produced output:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runMain(t, "-json", knownBad)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var diags []struct {
		Analyzer string
		Message  string
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, a := range []string{"maporder", "detsource", "noalloc", "ctxescape", "atomicmix"} {
		if !seen[a] {
			t.Errorf("JSON findings missing analyzer %s", a)
		}
	}
}
