package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/sim"
)

// censusTranscript runs the native census on a ring and returns the raw
// transcript bytes — the in-process generator the CLI tests feed on.
func censusTranscript(t *testing.T, n int, seed int64, opts ...sim.Option) []byte {
	t.Helper()
	g, err := graph.Ring(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog := globalfunc.P2PStepProgram(globalfunc.Sum, func(graph.NodeID) int64 { return 1 })
	var buf bytes.Buffer
	tw := sim.NewTranscriptWriter(&buf, false)
	if _, err := sim.RunStep(g, prog, append([]sim.Option{sim.WithSeed(seed), sim.WithTranscript(tw)}, opts...)...); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyAndShow(t *testing.T) {
	p := writeTemp(t, "a.mmtr", censusTranscript(t, 12, 5))
	var out bytes.Buffer
	if err := run([]string{"-verify", p}, &out); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("verify output: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-show", p}, &out); err != nil {
		t.Fatalf("show: %v", err)
	}
	if !strings.Contains(out.String(), "header: n=12 seed=5") || !strings.Contains(out.String(), "final:") {
		t.Errorf("show output: %q", out.String())
	}
}

func TestVerifyRejectsTruncation(t *testing.T) {
	raw := censusTranscript(t, 10, 2)
	p := writeTemp(t, "trunc.mmtr", raw[:len(raw)-20])
	if err := run([]string{"-verify", p}, io.Discard); err == nil {
		t.Error("truncated transcript verified cleanly")
	}
}

func TestDiffIdenticalAndHeaders(t *testing.T) {
	a := writeTemp(t, "a.mmtr", censusTranscript(t, 12, 5))
	b := writeTemp(t, "b.mmtr", censusTranscript(t, 12, 5, sim.WithWorkers(3)))
	var out bytes.Buffer
	if err := run([]string{"-diff", a, b}, &out); err != nil {
		t.Fatalf("diff of identical runs: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "transcripts identical") {
		t.Errorf("diff output: %q", out.String())
	}
	// Different seeds are flagged at the header, before any frame.
	c := writeTemp(t, "c.mmtr", censusTranscript(t, 12, 6))
	out.Reset()
	if err := run([]string{"-diff", a, c}, &out); err == nil {
		t.Error("diff across seeds reported no divergence")
	} else if !strings.Contains(out.String(), "headers differ") {
		t.Errorf("diff output: %q", out.String())
	}
}

// TestDiffPinpointsInjectedDivergence is the acceptance check: flip one
// node's inbox digest in one round frame and -diff must name that exact
// round and node.
func TestDiffPinpointsInjectedDivergence(t *testing.T) {
	raw := censusTranscript(t, 12, 5)
	tr, err := sim.NewTranscriptReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Header()
	var buf bytes.Buffer
	tw := sim.NewTranscriptWriter(&buf, false)
	tw.WriteHeader(&h)
	wantRound, wantNode := -1, graph.NodeID(-1)
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rf != nil {
			if wantRound == -1 && len(rf.Nodes) > 0 {
				wantRound, wantNode = rf.Round, rf.Nodes[0].Node
				rf.Nodes[0].Digest ^= 0xdeadbeef
			}
			tw.WriteRound(rf)
		}
		if ff != nil {
			tw.WriteFinal(ff)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if wantRound == -1 {
		t.Fatal("no round frame carried inbox digests")
	}
	a := writeTemp(t, "a.mmtr", raw)
	b := writeTemp(t, "b.mmtr", buf.Bytes())
	var out bytes.Buffer
	if err := run([]string{"-diff", a, b}, &out); err == nil {
		t.Fatal("injected divergence not reported")
	}
	if !strings.Contains(out.String(), "diverged at round "+strconv.Itoa(wantRound)) ||
		!strings.Contains(out.String(), "node "+strconv.Itoa(int(wantNode))+" inbox digest") {
		t.Errorf("diff did not pinpoint round %d node %d: %q", wantRound, wantNode, out.String())
	}
}

// TestStitchMatchesUninterrupted drives the file-level stitch: checkpoint a
// run, resume it, stitch the two transcripts, and require byte-identity with
// the uninterrupted run.
func TestStitchMatchesUninterrupted(t *testing.T) {
	g, err := graph.Ring(14, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog := globalfunc.P2PStepProgram(globalfunc.Sum, func(graph.NodeID) int64 { return 1 })
	ref := censusTranscript(t, 14, 4)

	var cps []*sim.Checkpoint
	spec := &sim.CheckpointSpec{At: []int{6}, Sink: func(cp *sim.Checkpoint) error { cps = append(cps, cp); return nil }}
	if _, err := sim.RunStep(g, prog, sim.WithSeed(4), sim.WithCheckpoints(spec)); err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Fatalf("captured %d checkpoints", len(cps))
	}
	var rbuf bytes.Buffer
	tw := sim.NewTranscriptWriter(&rbuf, false)
	if _, err := sim.Resume(g, prog, cps[0], sim.WithTranscript(tw)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	refP := writeTemp(t, "ref.mmtr", ref)
	resP := writeTemp(t, "res.mmtr", rbuf.Bytes())
	outP := filepath.Join(t.TempDir(), "stitched.mmtr")
	if err := run([]string{"-stitch", outP, "-at", "6", refP, resP}, io.Discard); err != nil {
		t.Fatalf("stitch: %v", err)
	}
	got, err := os.ReadFile(outP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("stitched transcript differs from uninterrupted run (%d vs %d bytes)", len(got), len(ref))
	}
}

func TestBisectCleanRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-bisect", "-algo", "census", "-graph", "ring", "-n", "24",
		"-seed", "7", "-workers-a", "1", "-workers-b", "3"}, &out)
	if err != nil {
		t.Fatalf("bisect: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "states identical") {
		t.Errorf("bisect output: %q", out.String())
	}
}

// TestFixtureStructurallyValid keeps the committed fixture honest: it must
// verify cleanly and describe the run that generated it (census, ring 16).
func TestFixtureStructurallyValid(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-verify", "testdata/census-ring16.mmtr"}, &out); err != nil {
		t.Fatalf("fixture verify: %v", err)
	}
	out.Reset()
	if err := run([]string{"-show", "testdata/census-ring16.mmtr"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "header: n=16 seed=3") {
		t.Errorf("fixture header: %q", out.String())
	}
}
