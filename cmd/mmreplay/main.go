// Command mmreplay inspects, verifies, diffs, stitches, and bisects the
// binary run transcripts mmnet emits (-transcript) and the checkpoints it
// captures (-checkpoint). It is the debugging loop for the determinism
// contract: when two runs that must be bit-identical are not, -diff
// pinpoints the first divergent (round, node, field), and -bisect drives an
// automatic binary search over checkpointed state to find the first round
// where two configurations' full engine states differ — even before the
// divergence becomes observable in the transcript.
//
// Usage examples:
//
//	mmreplay -show run.mmtr
//	mmreplay -verify run.mmtr
//	mmreplay -diff a.mmtr b.mmtr
//	mmreplay -stitch out.mmtr -at 40 prefix.mmtr resumed.mmtr
//	mmreplay -bisect -algo census -graph ring -n 64 -seed 9 -workers-a 1 -workers-b 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/size"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmreplay:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mmreplay", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		show   = fs.Bool("show", false, "print the transcript's header and per-round frames")
		verify = fs.Bool("verify", false, "structurally validate the transcript (crc, frame order, final frame)")
		diff   = fs.Bool("diff", false, "compare two transcripts; report the first divergent (round, node, field)")
		stitch = fs.String("stitch", "", "write a stitched transcript to this path (args: prefix resumed; see -at)")
		at     = fs.Int("at", -1, "stitch cut round: frames ≤ at from the prefix, later frames from the resumed transcript")
		bisect = fs.Bool("bisect", false, "binary-search the first round where two configurations' checkpointed states diverge")

		algo     = fs.String("algo", "census", "bisect: protocol to re-run: census|estimate-step")
		gname    = fs.String("graph", "ring", "bisect: "+graph.SpecHelp())
		n        = fs.Int("n", 64, "bisect: number of nodes")
		seed     = fs.Int64("seed", 1, "bisect: master seed")
		faults   = fs.String("faults", "", "bisect: fault plan DSL")
		maxR     = fs.Int("max-rounds", 0, "bisect: round budget (0 = graph-derived default)")
		workersA = fs.Int("workers-a", 1, "bisect: worker count of configuration A")
		workersB = fs.Int("workers-b", 4, "bisect: worker count of configuration B")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	switch {
	case *show:
		return withTranscript(fs.Args(), 1, func(trs []*sim.TranscriptReader) error {
			return showTranscript(w, trs[0])
		})
	case *verify:
		return withTranscript(fs.Args(), 1, func(trs []*sim.TranscriptReader) error {
			return verifyTranscript(w, trs[0])
		})
	case *diff:
		return withTranscript(fs.Args(), 2, func(trs []*sim.TranscriptReader) error {
			return diffTranscripts(w, trs[0], trs[1])
		})
	case *stitch != "":
		if *at < 0 {
			return errors.New("-stitch requires -at ROUND")
		}
		return withTranscript(fs.Args(), 2, func(trs []*sim.TranscriptReader) error {
			return stitchTranscripts(*stitch, *at, trs[0], trs[1])
		})
	case *bisect:
		return bisectStates(w, *algo, *gname, *n, *seed, *faults, *maxR, *workersA, *workersB)
	default:
		fs.Usage()
		return errors.New("pick a mode: -show, -verify, -diff, -stitch, or -bisect")
	}
}

// withTranscript opens exactly want transcript files and runs f on them.
func withTranscript(paths []string, want int, f func([]*sim.TranscriptReader) error) error {
	if len(paths) != want {
		return fmt.Errorf("expected %d transcript file(s), got %d", want, len(paths))
	}
	trs := make([]*sim.TranscriptReader, len(paths))
	for i, p := range paths {
		fh, err := os.Open(p)
		if err != nil {
			return err
		}
		defer fh.Close()
		if trs[i], err = sim.NewTranscriptReader(fh); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	return f(trs)
}

func showTranscript(w io.Writer, tr *sim.TranscriptReader) error {
	h := tr.Header()
	fmt.Fprintf(w, "header: n=%d seed=%d plan=%q label=%q gzip=%v\n", h.N, h.Seed, h.Plan, h.Label, h.Gzip)
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rf != nil {
			fmt.Fprintf(w, "round %d: slot=%v alive=%d msgs=%d inboxes=%d\n",
				rf.Round, rf.Slot, rf.Alive, rf.Met.Messages, len(rf.Nodes))
		}
		if ff != nil {
			status := "ok"
			if ff.Err != "" {
				status = "err=" + ff.Err
			}
			fmt.Fprintf(w, "final: rounds=%d messages=%d %s results=%016x\n",
				ff.Met.Rounds, ff.Met.Messages, status, ff.ResultsDigest)
		}
	}
}

func verifyTranscript(w io.Writer, tr *sim.TranscriptReader) error {
	rounds, prev := 0, -1
	var final *sim.FinalFrame
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rf != nil {
			if final != nil {
				return fmt.Errorf("round frame %d after the final frame", rf.Round)
			}
			if rf.Round <= prev {
				return fmt.Errorf("round %d out of order (previous %d)", rf.Round, prev)
			}
			for i := 1; i < len(rf.Nodes); i++ {
				if rf.Nodes[i].Node <= rf.Nodes[i-1].Node {
					return fmt.Errorf("round %d: inbox digests out of node order", rf.Round)
				}
			}
			prev, rounds = rf.Round, rounds+1
		}
		if ff != nil {
			final = ff
		}
	}
	if final == nil {
		return errors.New("transcript is truncated: no final frame")
	}
	fmt.Fprintf(w, "ok: %d round frames, final at round %d, n=%d\n", rounds, final.Met.Rounds, final.N)
	return nil
}

// nextFrame pulls the next frame of a stream, returning io.EOF exhaustion
// as (nil, nil, nil).
func nextFrame(tr *sim.TranscriptReader) (*sim.RoundFrame, *sim.FinalFrame, error) {
	rf, ff, err := tr.Next()
	if err == io.EOF {
		return nil, nil, nil
	}
	return rf, ff, err
}

// diffTranscripts reports the first divergence between two transcripts:
// the exact round, the field, and — for inbox digests — the node.
func diffTranscripts(w io.Writer, a, b *sim.TranscriptReader) error {
	ha, hb := a.Header(), b.Header()
	if ha.N != hb.N || ha.Seed != hb.Seed || ha.Plan != hb.Plan {
		fmt.Fprintf(w, "headers differ: a(n=%d seed=%d plan=%q) vs b(n=%d seed=%d plan=%q)\n",
			ha.N, ha.Seed, ha.Plan, hb.N, hb.Seed, hb.Plan)
		return errors.New("transcripts diverge")
	}
	rounds := 0
	for {
		ra, fa, err := nextFrame(a)
		if err != nil {
			return err
		}
		rb, fb, err := nextFrame(b)
		if err != nil {
			return err
		}
		switch {
		case ra != nil && rb != nil:
			if field, detail := diffRound(ra, rb); field != "" {
				fmt.Fprintf(w, "diverged at round %d: %s: %s\n", ra.Round, field, detail)
				return errors.New("transcripts diverge")
			}
			rounds++
		case fa != nil && fb != nil:
			if field, detail := diffFinal(fa, fb); field != "" {
				fmt.Fprintf(w, "diverged at final frame: %s: %s\n", field, detail)
				return errors.New("transcripts diverge")
			}
			fmt.Fprintf(w, "transcripts identical: %d round frames, final at round %d\n", rounds, fa.Met.Rounds)
			return nil
		case ra == nil && rb == nil && fa == nil && fb == nil:
			fmt.Fprintf(w, "transcripts identical but truncated: %d round frames, no final frame\n", rounds)
			return nil
		default:
			fmt.Fprintf(w, "diverged after round frame %d: one transcript ends early (a: round=%v final=%v, b: round=%v final=%v)\n",
				rounds, ra != nil, fa != nil, rb != nil, fb != nil)
			return errors.New("transcripts diverge")
		}
	}
}

// diffRound returns the first differing field of two same-position round
// frames ("" if identical).
func diffRound(a, b *sim.RoundFrame) (field, detail string) {
	if a.Round != b.Round {
		return "round", fmt.Sprintf("a=%d b=%d", a.Round, b.Round)
	}
	if a.Slot != b.Slot {
		return "slot", fmt.Sprintf("a=%v b=%v", a.Slot, b.Slot)
	}
	if a.From != b.From {
		return "slot writer", fmt.Sprintf("a=node %d b=node %d", a.From, b.From)
	}
	if a.SlotDigest != b.SlotDigest {
		return "slot payload digest", fmt.Sprintf("a=%016x b=%016x", a.SlotDigest, b.SlotDigest)
	}
	if a.Alive != b.Alive {
		return "alive", fmt.Sprintf("a=%d b=%d", a.Alive, b.Alive)
	}
	if name, av, bv := diffMetrics(&a.Met, &b.Met); name != "" {
		return "metrics." + name, fmt.Sprintf("a=%d b=%d", av, bv)
	}
	// Inbox digests: walk the sorted node lists in lockstep.
	i, j := 0, 0
	for i < len(a.Nodes) || j < len(b.Nodes) {
		switch {
		case j >= len(b.Nodes) || (i < len(a.Nodes) && a.Nodes[i].Node < b.Nodes[j].Node):
			return fmt.Sprintf("node %d inbox", a.Nodes[i].Node), "delivered in a only"
		case i >= len(a.Nodes) || a.Nodes[i].Node > b.Nodes[j].Node:
			return fmt.Sprintf("node %d inbox", b.Nodes[j].Node), "delivered in b only"
		case a.Nodes[i].Digest != b.Nodes[j].Digest:
			return fmt.Sprintf("node %d inbox digest", a.Nodes[i].Node),
				fmt.Sprintf("a=%016x b=%016x", a.Nodes[i].Digest, b.Nodes[j].Digest)
		default:
			i, j = i+1, j+1
		}
	}
	return "", ""
}

func diffFinal(a, b *sim.FinalFrame) (field, detail string) {
	if name, av, bv := diffMetrics(&a.Met, &b.Met); name != "" {
		return "metrics." + name, fmt.Sprintf("a=%d b=%d", av, bv)
	}
	if a.Err != b.Err {
		return "error", fmt.Sprintf("a=%q b=%q", a.Err, b.Err)
	}
	if a.ResultsDigest != b.ResultsDigest {
		return "results digest", fmt.Sprintf("a=%016x b=%016x", a.ResultsDigest, b.ResultsDigest)
	}
	if a.N != b.N {
		return "n", fmt.Sprintf("a=%d b=%d", a.N, b.N)
	}
	return "", ""
}

// diffMetrics names the first differing Metrics field.
func diffMetrics(a, b *sim.Metrics) (string, int64, int64) {
	type fieldOf struct {
		name string
		a, b int64
	}
	fields := []fieldOf{
		{"rounds", int64(a.Rounds), int64(b.Rounds)},
		{"messages", a.Messages, b.Messages},
		{"slots_idle", a.SlotsIdle, b.SlotsIdle},
		{"slots_success", a.SlotsSuccess, b.SlotsSuccess},
		{"slots_collision", a.SlotsCollision, b.SlotsCollision},
		{"dropped_halted", a.DroppedHalted, b.DroppedHalted},
		{"crashed", a.Crashed, b.Crashed},
		{"dropped_fault", a.DroppedFault, b.DroppedFault},
		{"delayed", a.Delayed, b.Delayed},
		{"duplicated", a.Duplicated, b.Duplicated},
		{"slots_jammed", a.SlotsJammed, b.SlotsJammed},
	}
	for _, f := range fields {
		if f.a != f.b {
			return f.name, f.a, f.b
		}
	}
	return "", 0, 0
}

// stitchTranscripts re-frames the prefix's rounds ≤ at followed by the
// resumed transcript's rounds > at, closing with the resumed final frame —
// the file form of the byte-stitching the resume tests do in memory.
// Re-encoding through the shared writer is canonical, so a stitched file
// byte-compares against an uninterrupted run's transcript.
func stitchTranscripts(path string, at int, prefix, resumed *sim.TranscriptReader) error {
	ha, hb := prefix.Header(), resumed.Header()
	if ha.N != hb.N || ha.Seed != hb.Seed || ha.Plan != hb.Plan {
		return fmt.Errorf("transcripts describe different runs: n=%d/%d seed=%d/%d plan=%q/%q",
			ha.N, hb.N, ha.Seed, hb.Seed, ha.Plan, hb.Plan)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw := sim.NewTranscriptWriter(f, strings.HasSuffix(path, ".gz"))
	tw.WriteHeader(&ha)
	for {
		rf, _, err := nextFrame(prefix)
		if err != nil {
			return err
		}
		if rf == nil || rf.Round > at {
			break
		}
		tw.WriteRound(rf)
	}
	var final *sim.FinalFrame
	for {
		rf, ff, err := nextFrame(resumed)
		if err != nil {
			return err
		}
		if rf == nil && ff == nil {
			break
		}
		if rf != nil && rf.Round > at {
			tw.WriteRound(rf)
		}
		if ff != nil {
			final = ff
		}
	}
	if final == nil {
		return errors.New("resumed transcript has no final frame")
	}
	tw.WriteFinal(final)
	if err := tw.Close(); err != nil {
		return err
	}
	return f.Close()
}

// bisectProgram resolves the re-runnable protocols.
func bisectProgram(algo string) (sim.StepProgram, error) {
	switch algo {
	case "census":
		return globalfunc.P2PStepProgram(globalfunc.Sum, func(graph.NodeID) int64 { return 1 }), nil
	case "estimate-step":
		return size.GLStepProgram(), nil
	default:
		return nil, fmt.Errorf("bisect supports the native step protocols census|estimate-step, not %q", algo)
	}
}

// bisectStates binary-searches the first round at which configuration A's
// and configuration B's checkpointed engine states differ. On a healthy
// engine the checkpoints are byte-identical at every round (that is the
// determinism contract); when they are not, the reported round is where the
// divergence entered the state — at or before where it first becomes
// observable in transcripts.
func bisectStates(w io.Writer, algo, gname string, n int, seed int64, faults string, maxR, workersA, workersB int) error {
	prog, err := bisectProgram(algo)
	if err != nil {
		return err
	}
	g, err := graph.ParseSpecWith(gname, seed, graph.SpecDefaults{N: n, Extra: n, Rays: 8, RayLen: 8})
	if err != nil {
		return err
	}
	var plan *fault.Plan
	if faults != "" {
		if plan, err = fault.Parse(faults); err != nil {
			return err
		}
	}
	opts := func(workers int, spec *sim.CheckpointSpec) []sim.Option {
		o := []sim.Option{sim.WithSeed(seed), sim.WithFaults(plan), sim.WithWorkers(workers)}
		if maxR > 0 {
			o = append(o, sim.WithMaxRounds(maxR))
		}
		if spec != nil {
			o = append(o, sim.WithCheckpoints(spec))
		}
		return o
	}

	// Reference run: how many rounds are there to search?
	res, runErr := sim.RunStep(g, prog, opts(workersA, nil)...)
	last := 0
	if runErr != nil {
		fmt.Fprintf(w, "run fails under workers=%d: %v (bisecting to the failure)\n", workersA, runErr)
		probe := &sim.CheckpointSpec{Every: 1, Sink: func(cp *sim.Checkpoint) error { last = cp.Round; return nil }}
		if _, err := sim.RunStep(g, prog, opts(workersA, probe)...); err == nil {
			return errors.New("run failed without checkpoints but succeeded with them — capture is not an observation")
		}
	} else {
		last = res.Metrics.Rounds - 1
	}
	if last < 1 {
		fmt.Fprintf(w, "run completes in %d round(s): nothing to bisect\n", last+1)
		return nil
	}

	stateAt := func(workers, round int) ([]byte, error) {
		var got []byte
		spec := &sim.CheckpointSpec{At: []int{round}, Sink: func(cp *sim.Checkpoint) error {
			b, err := cp.Encode()
			got = b
			return err
		}}
		_, err := sim.RunStep(g, prog, opts(workers, spec)...)
		if got == nil && err != nil {
			return nil, err
		}
		return got, nil
	}

	probes := 0
	lo, hi := 1, last // invariant: states at rounds < lo agree; first divergence ≤ hi if any
	firstBad := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		sa, err := stateAt(workersA, mid)
		if err != nil {
			return fmt.Errorf("workers=%d checkpoint at %d: %w", workersA, mid, err)
		}
		sb, err := stateAt(workersB, mid)
		if err != nil {
			return fmt.Errorf("workers=%d checkpoint at %d: %w", workersB, mid, err)
		}
		probes++
		if string(sa) == string(sb) {
			lo = mid + 1
		} else {
			firstBad, hi = mid, mid-1
		}
	}
	if firstBad == 0 {
		fmt.Fprintf(w, "states identical: workers %d and %d agree at every probed round through %d (%d probes)\n",
			workersA, workersB, last, probes)
		return nil
	}
	fmt.Fprintf(w, "first divergent state at round %d (workers %d vs %d, %d probes)\n", firstBad, workersA, workersB, probes)
	return errors.New("states diverge")
}
