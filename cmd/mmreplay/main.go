// Command mmreplay inspects, verifies, diffs, stitches, and bisects the
// binary run transcripts mmnet emits (-transcript) and the checkpoints it
// captures (-checkpoint). It is the debugging loop for the determinism
// contract: when two runs that must be bit-identical are not, -diff
// pinpoints the first divergent (round, node, field), and -bisect drives an
// automatic binary search over checkpointed state to find the first round
// where two configurations' full engine states differ — even before the
// divergence becomes observable in the transcript.
//
// Usage examples:
//
//	mmreplay -show run.mmtr
//	mmreplay -verify run.mmtr
//	mmreplay -diff a.mmtr b.mmtr
//	mmreplay -stitch out.mmtr -at 40 prefix.mmtr resumed.mmtr
//	mmreplay -bisect -algo census -graph ring -n 64 -seed 9 -workers-a 1 -workers-b 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/replay"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmreplay:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mmreplay", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		show   = fs.Bool("show", false, "print the transcript's header and per-round frames")
		verify = fs.Bool("verify", false, "structurally validate the transcript (crc, frame order, final frame)")
		diff   = fs.Bool("diff", false, "compare two transcripts; report the first divergent (round, node, field)")
		stitch = fs.String("stitch", "", "write a stitched transcript to this path (args: prefix resumed; see -at)")
		at     = fs.Int("at", -1, "stitch cut round: frames ≤ at from the prefix, later frames from the resumed transcript")
		bisect = fs.Bool("bisect", false, "binary-search the first round where two configurations' checkpointed states diverge")

		algo     = fs.String("algo", "census", "bisect: protocol to re-run: census|estimate-step")
		gname    = fs.String("graph", "ring", "bisect: "+graph.SpecHelp())
		n        = fs.Int("n", 64, "bisect: number of nodes")
		seed     = fs.Int64("seed", 1, "bisect: master seed")
		faults   = fs.String("faults", "", "bisect: fault plan DSL")
		maxR     = fs.Int("max-rounds", 0, "bisect: round budget (0 = graph-derived default)")
		workersA = fs.Int("workers-a", 1, "bisect: worker count of configuration A")
		workersB = fs.Int("workers-b", 4, "bisect: worker count of configuration B")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	switch {
	case *show:
		return withTranscript(fs.Args(), 1, func(trs []*sim.TranscriptReader) error {
			return showTranscript(w, trs[0])
		})
	case *verify:
		return withTranscript(fs.Args(), 1, func(trs []*sim.TranscriptReader) error {
			return verifyTranscript(w, trs[0])
		})
	case *diff:
		return withTranscript(fs.Args(), 2, func(trs []*sim.TranscriptReader) error {
			return replay.Diff(w, trs[0], trs[1])
		})
	case *stitch != "":
		if *at < 0 {
			return errors.New("-stitch requires -at ROUND")
		}
		return withTranscript(fs.Args(), 2, func(trs []*sim.TranscriptReader) error {
			return stitchTranscripts(*stitch, *at, trs[0], trs[1])
		})
	case *bisect:
		return bisectStates(w, *algo, *gname, *n, *seed, *faults, *maxR, *workersA, *workersB)
	default:
		fs.Usage()
		return errors.New("pick a mode: -show, -verify, -diff, -stitch, or -bisect")
	}
}

// withTranscript opens exactly want transcript files and runs f on them.
func withTranscript(paths []string, want int, f func([]*sim.TranscriptReader) error) error {
	if len(paths) != want {
		return fmt.Errorf("expected %d transcript file(s), got %d", want, len(paths))
	}
	trs := make([]*sim.TranscriptReader, len(paths))
	for i, p := range paths {
		fh, err := os.Open(p)
		if err != nil {
			return err
		}
		defer fh.Close()
		if trs[i], err = sim.NewTranscriptReader(fh); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	return f(trs)
}

func showTranscript(w io.Writer, tr *sim.TranscriptReader) error {
	h := tr.Header()
	fmt.Fprintf(w, "header: n=%d seed=%d plan=%q label=%q gzip=%v\n", h.N, h.Seed, h.Plan, h.Label, h.Gzip)
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rf != nil {
			fmt.Fprintf(w, "round %d: slot=%v alive=%d msgs=%d inboxes=%d\n",
				rf.Round, rf.Slot, rf.Alive, rf.Met.Messages, len(rf.Nodes))
		}
		if ff != nil {
			status := "ok"
			if ff.Err != "" {
				status = "err=" + ff.Err
			}
			fmt.Fprintf(w, "final: rounds=%d messages=%d %s results=%016x\n",
				ff.Met.Rounds, ff.Met.Messages, status, ff.ResultsDigest)
		}
	}
}

func verifyTranscript(w io.Writer, tr *sim.TranscriptReader) error {
	rounds, prev := 0, -1
	var final *sim.FinalFrame
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rf != nil {
			if final != nil {
				return fmt.Errorf("round frame %d after the final frame", rf.Round)
			}
			if rf.Round <= prev {
				return fmt.Errorf("round %d out of order (previous %d)", rf.Round, prev)
			}
			for i := 1; i < len(rf.Nodes); i++ {
				if rf.Nodes[i].Node <= rf.Nodes[i-1].Node {
					return fmt.Errorf("round %d: inbox digests out of node order", rf.Round)
				}
			}
			prev, rounds = rf.Round, rounds+1
		}
		if ff != nil {
			final = ff
		}
	}
	if final == nil {
		return errors.New("transcript is truncated: no final frame")
	}
	fmt.Fprintf(w, "ok: %d round frames, final at round %d, n=%d\n", rounds, final.Met.Rounds, final.N)
	return nil
}

// nextFrame pulls the next frame of a stream, returning io.EOF exhaustion
// as (nil, nil, nil).
func nextFrame(tr *sim.TranscriptReader) (*sim.RoundFrame, *sim.FinalFrame, error) {
	rf, ff, err := tr.Next()
	if err == io.EOF {
		return nil, nil, nil
	}
	return rf, ff, err
}

// stitchTranscripts re-frames the prefix's rounds ≤ at followed by the
// resumed transcript's rounds > at, closing with the resumed final frame —
// the file form of the byte-stitching the resume tests do in memory.
// Re-encoding through the shared writer is canonical, so a stitched file
// byte-compares against an uninterrupted run's transcript.
func stitchTranscripts(path string, at int, prefix, resumed *sim.TranscriptReader) error {
	ha, hb := prefix.Header(), resumed.Header()
	if ha.N != hb.N || ha.Seed != hb.Seed || ha.Plan != hb.Plan {
		return fmt.Errorf("transcripts describe different runs: n=%d/%d seed=%d/%d plan=%q/%q",
			ha.N, hb.N, ha.Seed, hb.Seed, ha.Plan, hb.Plan)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw := sim.NewTranscriptWriter(f, strings.HasSuffix(path, ".gz"))
	tw.WriteHeader(&ha)
	for {
		rf, _, err := nextFrame(prefix)
		if err != nil {
			return err
		}
		if rf == nil || rf.Round > at {
			break
		}
		tw.WriteRound(rf)
	}
	var final *sim.FinalFrame
	for {
		rf, ff, err := nextFrame(resumed)
		if err != nil {
			return err
		}
		if rf == nil && ff == nil {
			break
		}
		if rf != nil && rf.Round > at {
			tw.WriteRound(rf)
		}
		if ff != nil {
			final = ff
		}
	}
	if final == nil {
		return errors.New("resumed transcript has no final frame")
	}
	tw.WriteFinal(final)
	if err := tw.Close(); err != nil {
		return err
	}
	return f.Close()
}

// bisectStates parses the bisect flags' graph and plan and hands the
// search to the shared core in internal/replay, translating its sentinel
// into this command's historical exit message.
func bisectStates(w io.Writer, algo, gname string, n int, seed int64, faults string, maxR, workersA, workersB int) error {
	prog, err := replay.Program(algo)
	if err != nil {
		return err
	}
	g, err := graph.ParseSpecWith(gname, seed, graph.SpecDefaults{N: n, Extra: n, Rays: 8, RayLen: 8})
	if err != nil {
		return err
	}
	var plan *fault.Plan
	if faults != "" {
		if plan, err = fault.Parse(faults); err != nil {
			return err
		}
	}
	if err := replay.BisectStates(w, g, prog, seed, plan, maxR, workersA, workersB); err != nil {
		if errors.Is(err, replay.ErrDiverged) {
			return errors.New("states diverge")
		}
		return err
	}
	return nil
}
