package repro

// resume_test.go is the checkpoint/restore half of the differential harness:
// for a sample of (protocol, graph, seed, plan) tuples it checkpoints a
// native step run at rounds {1, mid, last-1}, resumes each checkpoint at
// several worker counts, and requires the resumed transcript — stitched onto
// the uninterrupted run's prefix — to be byte-identical to the uninterrupted
// transcript. For the fault-free census it additionally requires the native
// step transcript to be byte-identical to the goroutine-engine transcript of
// the goroutine form of the same protocol, tying the checkpoint seam into
// the cross-engine/cross-form determinism contract. The same driver doubles
// as a fuzz target.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/size"
)

// resumeMaxRounds bounds wedged faulted runs (a crashed BFS parent can
// stall the census forever); the budget error is part of the compared
// outcome.
const resumeMaxRounds = 300

var onesInputs = func(graph.NodeID) int64 { return 1 }

// resumeProtocols are the checkpointable native step protocols.
var resumeProtocols = []struct {
	name string
	prog sim.StepProgram
}{
	{"census", globalfunc.P2PStepProgram(globalfunc.Sum, onesInputs)},
	{"estimate-step", size.GLStepProgram()},
}

// runWithTranscript runs the program capturing its transcript; the run
// error is part of the outcome, not a test failure.
func runWithTranscript(t *testing.T, g graph.Topology, prog sim.StepProgram, opts ...sim.Option) ([]byte, *sim.Result, error) {
	t.Helper()
	var buf bytes.Buffer
	tw := sim.NewTranscriptWriter(&buf, false)
	res, err := sim.RunStep(g, prog, append(opts, sim.WithTranscript(tw))...)
	if cerr := tw.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	return buf.Bytes(), res, err
}

// frameOffsets scans an uncompressed transcript independently of
// sim.TranscriptReader: byte offsets of every frame plus each round frame's
// round (-1 for header/final frames).
func frameOffsets(t *testing.T, raw []byte) (offsets, rounds []int) {
	t.Helper()
	if len(raw) < 6 || string(raw[:4]) != "MMTR" || raw[5] != 0 {
		t.Fatalf("not a plain transcript (%d bytes)", len(raw))
	}
	const frameRoundKind = 2
	off := 6
	for off < len(raw) {
		offsets = append(offsets, off)
		kind := raw[off]
		size, n := binary.Uvarint(raw[off+1:])
		if n <= 0 || off+1+n+int(size)+4 > len(raw) {
			t.Fatalf("bad frame at offset %d", off)
		}
		if kind == frameRoundKind {
			r, _ := binary.Uvarint(raw[off+1+n : off+1+n+int(size)])
			rounds = append(rounds, int(r))
		} else {
			rounds = append(rounds, -1)
		}
		off += 1 + n + int(size) + 4
	}
	return offsets, rounds
}

// stitchTranscripts replaces ref's frames after round cut with the resumed
// transcript's frames (its prelude and header frame dropped).
func stitchTranscripts(t *testing.T, ref, resumed []byte, cut int) []byte {
	t.Helper()
	offs, rounds := frameOffsets(t, ref)
	cutOff := len(ref)
	for i, r := range rounds {
		if (r == -1 && i > 0) || r > cut {
			cutOff = offs[i]
			break
		}
	}
	roffs, _ := frameOffsets(t, resumed)
	if len(roffs) < 2 {
		t.Fatalf("resumed transcript has only %d frames", len(roffs))
	}
	return append(append([]byte{}, ref[:cutOff]...), resumed[roffs[1]:]...)
}

// checkResumeTuple is the shared driver: reference the uninterrupted run,
// checkpoint at the requested rounds, resume each checkpoint at workers 1
// and 4, and require stitched byte-identity and equal outcomes.
func checkResumeTuple(t *testing.T, g graph.Topology, prog sim.StepProgram, seed int64, plan *fault.Plan, cuts []int) {
	t.Helper()
	base := []sim.Option{sim.WithSeed(seed), sim.WithFaults(plan), sim.WithMaxRounds(resumeMaxRounds)}
	ref, want, wantErr := runWithTranscript(t, g, prog, append(base, sim.WithWorkers(1))...)
	refW4, _, _ := runWithTranscript(t, g, prog, append(base, sim.WithWorkers(4))...)
	if !bytes.Equal(ref, refW4) {
		t.Fatalf("uninterrupted transcripts differ between workers 1 and 4\n%s", replay.DiffBytes(ref, refW4))
	}

	// Locate the last executed iteration: the final round frame's label.
	_, rounds := frameOffsets(t, ref)
	last := 0
	for _, r := range rounds {
		if r > last {
			last = r
		}
	}
	if last < 2 {
		t.Skipf("run too short to cut (%d rounds)", last)
	}

	var cps []*sim.Checkpoint
	spec := &sim.CheckpointSpec{Sink: func(cp *sim.Checkpoint) error { cps = append(cps, cp); return nil }}
	for _, c := range cuts {
		if c >= 1 && c <= last-1 {
			spec.At = append(spec.At, c)
		}
	}
	if len(spec.At) == 0 {
		t.Skipf("no valid cut among %v for a %d-round run", cuts, last)
	}
	ckRaw, _, _ := runWithTranscript(t, g, prog, append(base, sim.WithWorkers(2), sim.WithCheckpoints(spec))...)
	if !bytes.Equal(ckRaw, ref) {
		t.Fatalf("checkpoint capture changed the transcript\n%s", replay.DiffBytes(ref, ckRaw))
	}
	if len(cps) == 0 {
		t.Fatalf("no checkpoints captured at %v", spec.At)
	}

	for _, cp := range cps {
		for _, w := range []int{1, 4} {
			var buf bytes.Buffer
			tw := sim.NewTranscriptWriter(&buf, false)
			res, err := sim.Resume(g, prog, cp, sim.WithWorkers(w), sim.WithTranscript(tw))
			if cerr := tw.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
				t.Fatalf("resume r%d w%d: err = %v, uninterrupted run had %v", cp.Round, w, err, wantErr)
			}
			if err == nil {
				if len(res.Results) != len(want.Results) {
					t.Fatalf("resume r%d w%d: %d results, want %d", cp.Round, w, len(res.Results), len(want.Results))
				}
				for v := range want.Results {
					if res.Results[v] != want.Results[v] {
						t.Errorf("resume r%d w%d: node %d result %v, want %v", cp.Round, w, v, res.Results[v], want.Results[v])
					}
				}
				if res.Metrics != want.Metrics {
					t.Errorf("resume r%d w%d: metrics diverge\n got %+v\nwant %+v", cp.Round, w, res.Metrics, want.Metrics)
				}
			}
			got := stitchTranscripts(t, ref, buf.Bytes(), cp.Round)
			if !bytes.Equal(got, ref) {
				// Auto-reduce the divergence to its first divergent round
				// and field — the in-process form of `mmreplay -diff`.
				t.Errorf("resume r%d w%d: stitched transcript differs from uninterrupted run (%d vs %d bytes)\n%s",
					cp.Round, w, len(got), len(ref), replay.DiffBytes(ref, got))
			}
		}
	}
}

// resumePlans are the fault plans the seeded resume table covers: none, a
// delay+dup storm (the pending-buffer stressor), and a crash+jam+dup mix.
var resumePlans = []string{
	"",
	"seed:17;delay:*@2-10/p0.3/d2;dup:*@3-9/p0.3/d3",
	"seed:11;crash:4@5;jam:3-4;dup:*@2-9/p0.2/d2",
	// Chaos v2 (append-only: fuzz corpus entries index this pool): a
	// partition that heals mid-run, so cuts land inside the window and the
	// restored run must still heal on schedule; and a crash-restart whose
	// revival lands inside a recurring jam window, so a resumed run must
	// re-derive the incarnation RNG and the jam schedule together.
	"seed:15;partition:2@3-9",
	"seed:19;crash:3@4;restart:3@9;jam:8-10/e6",
}

func TestCheckpointResumeDifferential(t *testing.T) {
	graphs := []struct {
		name string
		mk   func() (graph.Topology, error)
	}{
		{"ring26", func() (graph.Topology, error) { return graph.Ring(26, 3) }},
		{"random22", func() (graph.Topology, error) { return graph.RandomConnected(22, 30, 5) }},
	}
	for _, proto := range resumeProtocols {
		for _, gr := range graphs {
			for pi, planStr := range resumePlans {
				t.Run(fmt.Sprintf("%s/%s/plan%d", proto.name, gr.name, pi), func(t *testing.T) {
					g, err := gr.mk()
					if err != nil {
						t.Fatal(err)
					}
					var plan *fault.Plan
					if planStr != "" {
						if plan, err = fault.Parse(planStr); err != nil {
							t.Fatal(err)
						}
					}
					// Cut at {1, mid, last-1}; the driver derives "mid" and
					// "last" from the reference transcript and clamps.
					ref, _, _ := runWithTranscript(t, g, proto.prog, sim.WithSeed(9), sim.WithFaults(plan), sim.WithMaxRounds(resumeMaxRounds), sim.WithWorkers(1))
					_, rounds := frameOffsets(t, ref)
					last := 0
					for _, r := range rounds {
						last = max(last, r)
					}
					checkResumeTuple(t, g, proto.prog, 9, plan, []int{1, last / 2, last - 1})
				})
			}
		}
	}
}

// TestResumeCensusMatchesGoroutineForm ties the checkpoint seam to the
// cross-form contract: the native census transcript (the one the resume
// tests stitch against) must be byte-identical to the goroutine engine
// running the goroutine form of the same protocol.
func TestResumeCensusMatchesGoroutineForm(t *testing.T) {
	g, err := graph.Ring(26, 3)
	if err != nil {
		t.Fatal(err)
	}
	native, _, err := runWithTranscript(t, g, resumeProtocols[0].prog, sim.WithSeed(9), sim.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := sim.NewTranscriptWriter(&buf, false)
	if _, err := globalfunc.PointToPoint(g, 9, globalfunc.Sum, onesInputs,
		sim.WithEngine(sim.EngineGoroutine), sim.WithTranscript(tw)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(native, buf.Bytes()) {
		t.Errorf("native census transcript differs from the goroutine form (%d vs %d bytes)", len(native), len(buf.Bytes()))
	}
}

// FuzzResumeEquivalence lets the fuzzer explore the checkpoint/resume tuple
// space: any input whose stitched transcript diverges from the uninterrupted
// run is a restore bug.
func FuzzResumeEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(18), int64(11), uint8(2), uint8(0))
	f.Add(uint8(1), uint8(7), int64(3), uint8(1), uint8(2))
	// census under the delay+dup storm: the checkpoint must carry in-flight
	// delayed and duplicated messages through the resume.
	f.Add(uint8(0), uint8(14), int64(23), uint8(3), uint8(1))
	// Chaos v2: a partition healing across a checkpoint capture (cutSel 4
	// lands inside the 3-9 window), and a restart landing inside a jam
	// window — the resumed incarnation must re-derive its fresh RNG stream
	// and the recurring jam schedule from the checkpoint alone.
	f.Add(uint8(0), uint8(18), int64(11), uint8(4), uint8(3))
	f.Add(uint8(1), uint8(10), int64(7), uint8(5), uint8(4))
	f.Fuzz(func(t *testing.T, protoSel, nSel uint8, seed int64, cutSel, planSel uint8) {
		if seed < 0 {
			t.Skip("negative seeds normalize to themselves")
		}
		proto := resumeProtocols[int(protoSel)%len(resumeProtocols)]
		g, err := graph.Ring(8+int(nSel)%24, 3)
		if err != nil {
			t.Fatal(err)
		}
		var plan *fault.Plan
		if planStr := resumePlans[int(planSel)%len(resumePlans)]; planStr != "" {
			if plan, err = fault.Parse(planStr); err != nil {
				t.Fatal(err)
			}
		}
		ref, _, _ := runWithTranscript(t, g, proto.prog, sim.WithSeed(1+seed%100), sim.WithFaults(plan), sim.WithMaxRounds(resumeMaxRounds), sim.WithWorkers(1))
		_, rounds := frameOffsets(t, ref)
		last := 0
		for _, r := range rounds {
			last = max(last, r)
		}
		if last < 2 {
			t.Skip("run too short to cut")
		}
		cut := 1 + int(cutSel)%(last-1)
		checkResumeTuple(t, g, proto.prog, 1+seed%100, plan, []int{cut})
	})
}
